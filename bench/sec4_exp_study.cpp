// Section IV: the FEXPA-based exponential study.
//
// Reproduces every quantity the section states: cycles/element per
// toolchain (GNU-serial ~32, Arm 6, Cray 4.2, Fujitsu 2.1, Intel/SKL
// 1.6), the loop-shape progression of our own kernel (VLA 2.2 ->
// fixed-width 2.0 -> unrolled 1.9), Estrin-vs-Horner, the ~15 FP
// instructions per loop body, measured ULP accuracy (paper: ~6 ulp,
// better with the corrected last FMA), and host wall-clock timings of
// the emulated kernels for the shape comparison.

#include <cmath>
#include <cstdio>
#include <utility>

#include "ookami/common/aligned.hpp"
#include "ookami/common/rng.hpp"
#include "ookami/harness/harness.hpp"
#include "ookami/perf/loop_model.hpp"
#include "ookami/report/report.hpp"
#include "ookami/toolchain/toolchain.hpp"
#include "ookami/vecmath/vecmath.hpp"

using namespace ookami;
using toolchain::Toolchain;
using vecmath::LoopShape;
using vecmath::PolyScheme;
using vecmath::Rounding;

namespace {

/// Model cycles/element of the FEXPA kernel with a given loop shape.
double model_cycles(LoopShape shape, PolyScheme scheme) {
  perf::LoweredLoop l;
  l.vectorized = true;
  // The paper counts 15 FP instructions in the loop body: our arithmetic
  // count plus the conversions/dup constants an actual SVE compilation
  // carries (+3).
  const double instrs = vecmath::exp_fexpa_flops_per_vector(scheme, Rounding::kFast) + 3.0;
  // The VLA shape adds the per-iteration WHILELT/predicate management.
  const double extra = shape == LoopShape::kVla ? 1.5 : 0.0;
  l.fp_per_elem = (instrs + extra) / perf::a64fx().lanes();
  l.int_per_elem = 3.0 / perf::a64fx().lanes();
  l.unrolled = shape == LoopShape::kUnrolled2;
  l.working_set_bytes = 64 * 1024;
  l.cache_bytes_per_elem = 16;
  return perf::cycles_per_elem(perf::a64fx(), l);
}

}  // namespace

OOKAMI_BENCH(sec4_exp_study) {
  std::printf("Section IV — evaluation of the exponential function\n\n");

  // (1) Toolchain cycles/element on A64FX (and Intel on Skylake).
  TextTable tc_table({"implementation", "cycles/elem (paper)", "cycles/elem (model)"});
  const double fj = toolchain::kernel_cycles_per_elem(loops::LoopKind::kExp,
                                                      Toolchain::kFujitsu, perf::a64fx());
  const double cray = toolchain::kernel_cycles_per_elem(loops::LoopKind::kExp,
                                                        Toolchain::kCray, perf::a64fx());
  const double arm = toolchain::kernel_cycles_per_elem(loops::LoopKind::kExp,
                                                       Toolchain::kArm21, perf::a64fx());
  const double gnu = toolchain::kernel_cycles_per_elem(loops::LoopKind::kExp,
                                                       Toolchain::kGnu, perf::a64fx());
  const double intel = toolchain::kernel_cycles_per_elem(loops::LoopKind::kExp,
                                                         Toolchain::kIntel, perf::skylake_6140());
  tc_table.add_row({"GNU scalar libm (A64FX)", "32", TextTable::num(gnu, 2)});
  tc_table.add_row({"Arm vector lib (A64FX)", "6", TextTable::num(arm, 2)});
  tc_table.add_row({"Cray vector lib (A64FX)", "4.2", TextTable::num(cray, 2)});
  tc_table.add_row({"Fujitsu / FEXPA (A64FX)", "2.1", TextTable::num(fj, 2)});
  tc_table.add_row({"Intel SVML (Skylake)", "1.6", TextTable::num(intel, 2)});
  std::printf("%s\n", tc_table.str().c_str());
  run.record("cycles-per-elem/gnu", gnu, "cyc/elem");
  run.record("cycles-per-elem/arm", arm, "cyc/elem");
  run.record("cycles-per-elem/cray", cray, "cyc/elem");
  run.record("cycles-per-elem/fujitsu", fj, "cyc/elem");
  run.record("cycles-per-elem/intel-skl", intel, "cyc/elem");

  // (2) Loop-shape progression of our FEXPA kernel.
  TextTable shape_table({"loop structure", "cycles/elem (paper)", "cycles/elem (model)"});
  shape_table.add_row({"vector-length agnostic (WHILELT)", "2.2",
                       TextTable::num(model_cycles(LoopShape::kVla, PolyScheme::kHorner), 2)});
  shape_table.add_row({"fixed-width", "2.0",
                       TextTable::num(model_cycles(LoopShape::kFixed, PolyScheme::kHorner), 2)});
  shape_table.add_row({"unrolled once", "1.9",
                       TextTable::num(model_cycles(LoopShape::kUnrolled2, PolyScheme::kHorner), 2)});
  std::printf("%s\n", shape_table.str().c_str());

  // (3) Instruction budget and Estrin vs Horner.
  std::printf("FP instructions per vector: Horner=%d (paper counts 15 in the loop body), "
              "Estrin=%d (more multiplies, shorter chain), corrected-FMA variant adds %d\n\n",
              vecmath::exp_fexpa_flops_per_vector(PolyScheme::kHorner, Rounding::kFast),
              vecmath::exp_fexpa_flops_per_vector(PolyScheme::kEstrin, Rounding::kFast),
              vecmath::exp_fexpa_flops_per_vector(PolyScheme::kHorner, Rounding::kCorrected) -
                  vecmath::exp_fexpa_flops_per_vector(PolyScheme::kHorner, Rounding::kFast));

  // (4) Measured accuracy.
  using sve::Vec;
  auto sweep = [](PolyScheme s, Rounding r) {
    return vecmath::ulp_sweep(
        [&](double x) { return vecmath::exp_fexpa(Vec(x), s, r)[0]; },
        [](double x) { return std::exp(x); }, -700.0, 700.0, 100000);
  };
  const auto fast = sweep(PolyScheme::kEstrin, Rounding::kFast);
  const auto corrected = sweep(PolyScheme::kEstrin, Rounding::kCorrected);
  std::printf("Accuracy (paper: ~6 ulp, improvable by correcting the last FMA):\n");
  std::printf("  fast      : max %.1f ulp, mean %.3f ulp\n", fast.max_ulp, fast.mean_ulp);
  std::printf("  corrected : max %.1f ulp, mean %.3f ulp\n\n", corrected.max_ulp,
              corrected.mean_ulp);
  run.record("ulp/fast", fast.max_ulp, "ulp");
  run.record("ulp/corrected", corrected.max_ulp, "ulp");

  // (5) Host wall-clock of the emulated kernels (shape comparison only;
  // absolute numbers are emulation, not silicon).
  const std::size_t n = 1 << 16;
  avec<double> x(n), y(n);
  Xoshiro256 rng(2);
  fill_uniform({x.data(), n}, -50.0, 50.0, rng);
  for (auto [shape, name] : {std::pair{LoopShape::kVla, "vla"},
                             std::pair{LoopShape::kFixed, "fixed"},
                             std::pair{LoopShape::kUnrolled2, "unrolled"}}) {
    const auto& s = run.time(std::string("host/exp-") + name,
                             [&] { vecmath::exp_array({x.data(), n}, {y.data(), n}, shape); });
    std::printf("host emulation %-9s: %.1f ns/elem (median)\n", name,
                s.median() / static_cast<double>(n) * 1e9);
  }

  const std::vector<report::ClaimCheck> claims = {
      {"sec4/fujitsu", "FEXPA exp cycles/elem", 2.1, fj, 1.25},
      {"sec4/cray", "Cray exp cycles/elem", 4.2, cray, 1.3},
      {"sec4/arm", "Arm exp cycles/elem", 6.0, arm, 1.3},
      {"sec4/gnu", "GNU scalar exp cycles/elem", 32.0, gnu, 1.3},
      {"sec4/intel", "Intel SVML cycles/elem on SKL", 1.6, intel, 1.3},
      {"sec4/vla", "VLA loop cycles/elem", 2.2, model_cycles(LoopShape::kVla, PolyScheme::kHorner), 1.2},
      {"sec4/fixed", "fixed-width cycles/elem", 2.0, model_cycles(LoopShape::kFixed, PolyScheme::kHorner), 1.2},
      {"sec4/unrolled", "unrolled cycles/elem", 1.9, model_cycles(LoopShape::kUnrolled2, PolyScheme::kHorner), 1.2},
      // Favorable divergence: our degree-5 reduction lands well inside
      // the paper's ~6 ulp envelope.
      {"sec4/ulp", "fast-variant accuracy within ~6 ulp", 6.0, fast.max_ulp, 3.5},
  };
  run.check("Section IV", claims);
  return 0;
}
