// Ablation A4: DGEMM implementation-tier sweep on the host — the
// library-quality axis of Figure 8 in miniature (naive -> blocked ->
// blocked+threads), across matrix sizes, timed under the harness
// repeat protocol with GF/s recorded from the median.

#include <cstdio>
#include <string>

#include "ookami/common/aligned.hpp"
#include "ookami/common/rng.hpp"
#include "ookami/common/threadpool.hpp"
#include "ookami/harness/harness.hpp"
#include "ookami/hpcc/hpcc.hpp"

using namespace ookami;
using hpcc::GemmImpl;

namespace {

void bench_dgemm(harness::Run& run, const char* tier, GemmImpl impl, std::size_t n) {
  ThreadPool pool(2);
  avec<double> a(n * n), b(n * n), c(n * n);
  Xoshiro256 rng(1);
  fill_uniform({a.data(), a.size()}, -1.0, 1.0, rng);
  fill_uniform({b.data(), b.size()}, -1.0, 1.0, rng);
  const std::string name = std::string(tier) + "/n" + std::to_string(n);
  const auto& s =
      run.time(name, [&] { hpcc::dgemm(impl, n, a.data(), b.data(), c.data(), pool); });
  const double gfs = 2.0 * static_cast<double>(n) * n * n / s.median() / 1e9;
  run.record(name + "/gflops", gfs, "GF/s", harness::Direction::kHigherIsBetter);
  std::printf("  dgemm %-12s median %9.3f ms  %6.2f GF/s\n", name.c_str(), s.median() * 1e3,
              gfs);
}

}  // namespace

OOKAMI_BENCH(abl_dgemm_block) {
  std::printf("Ablation A4 — DGEMM tier sweep (host)\n\n");
  for (std::size_t n : {128ul, 256ul}) bench_dgemm(run, "naive", GemmImpl::kNaive, n);
  for (std::size_t n : {128ul, 256ul, 384ul}) bench_dgemm(run, "blocked", GemmImpl::kBlocked, n);
  for (std::size_t n : {128ul, 256ul, 384ul}) bench_dgemm(run, "tuned", GemmImpl::kTuned, n);
  return 0;
}
