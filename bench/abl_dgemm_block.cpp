// Ablation A4: DGEMM implementation-tier sweep on the host — the
// library-quality axis of Figure 8 in miniature (naive -> blocked ->
// blocked+threads), across matrix sizes, with correctness checks.

#include <benchmark/benchmark.h>

#include "ookami/common/aligned.hpp"
#include "ookami/common/rng.hpp"
#include "ookami/common/threadpool.hpp"
#include "ookami/hpcc/hpcc.hpp"

using namespace ookami;
using hpcc::GemmImpl;

namespace {

void BM_Dgemm(benchmark::State& state, GemmImpl impl) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(2);
  avec<double> a(n * n), b(n * n), c(n * n);
  Xoshiro256 rng(1);
  fill_uniform({a.data(), a.size()}, -1.0, 1.0, rng);
  fill_uniform({b.data(), b.size()}, -1.0, 1.0, rng);
  for (auto _ : state) {
    hpcc::dgemm(impl, n, a.data(), b.data(), c.data(), pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GF/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Dgemm, naive, GemmImpl::kNaive)->Arg(128)->Arg(256);
BENCHMARK_CAPTURE(BM_Dgemm, blocked, GemmImpl::kBlocked)->Arg(128)->Arg(256)->Arg(384);
BENCHMARK_CAPTURE(BM_Dgemm, tuned, GemmImpl::kTuned)->Arg(128)->Arg(256)->Arg(384);

BENCHMARK_MAIN();
