// Table III: specifications of the compared HPC systems, regenerated
// from the machine models (the peak columns are computed by the same
// formula the paper uses: freq x FMA pipes x 2 flop x lanes).

#include <cstdio>

#include "ookami/common/table.hpp"
#include "ookami/harness/harness.hpp"
#include "ookami/perf/machine.hpp"

using namespace ookami;

OOKAMI_BENCH(table3_systems) {
  std::printf("Table III — specifications of compared HPC systems\n\n");
  TextTable t({"System", "SIMD", "Cores/Node", "Base GHz", "Peak GF/s/core", "Peak GF/s/node"});
  const char* names[] = {"Ookami (A64FX)", "Stampede2 SKX (8160)", "Stampede2 KNL (7250)",
                         "Bridges-2 / Expanse (EPYC 7742)"};
  int i = 0;
  for (const auto* m : perf::table3_systems()) {
    t.add_row({names[i], std::to_string(m->simd_bits) + "-bit",
               std::to_string(m->cores), TextTable::num(m->freq_ghz, 2),
               TextTable::num(m->peak_gflops_core(), 1),
               TextTable::num(m->peak_gflops_node(), 0)});
    run.record(std::string(names[i]) + "/peak-gflops-core", m->peak_gflops_core(), "GF/s",
               harness::Direction::kHigherIsBetter);
    run.record(std::string(names[i]) + "/peak-gflops-node", m->peak_gflops_node(), "GF/s",
               harness::Direction::kHigherIsBetter);
    ++i;
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("(paper values: 57.6/2765, 44.8/2150, 44.8/3046, 36/4608 — asserted in tests)\n");
  return 0;
}
