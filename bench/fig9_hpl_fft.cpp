// Figure 9: (A) HPL single-node GF/s across libraries, (B) HPL
// multi-node scaling under Fujitsu MPI vs OpenMPI/ARMPL, (C) FFT
// single-node GF/s across libraries, (D) FFT multi-node scaling.
// Executable HPL and FFT are verified on the host first; cross-system
// and multi-node numbers come from the efficiency tables and netsim.

#include <cstdio>

#include "ookami/common/table.hpp"
#include "ookami/harness/harness.hpp"
#include "ookami/hpcc/hpcc.hpp"
#include "ookami/report/report.hpp"

using namespace ookami;

OOKAMI_BENCH(fig9_hpl_fft) {
  std::printf("Fig. 9 — HPL and FFT performance\n\n");

  // Host verification.
  const auto hpl = hpcc::hpl_solve(200, 32, 2);
  std::printf("  host HPL n=200: %s (scaled residual %.3f, %.2f GF/s host)\n",
              hpl.verified ? "VERIFIED" : "FAILED", hpl.residual_norm, hpl.gflops);
  run.record("host/hpl-n200/gflops", hpl.gflops, "GF/s", harness::Direction::kHigherIsBetter);
  {
    ThreadPool pool(2);
    std::vector<hpcc::cplx> v(1 << 14);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = {std::cos(0.1 * i), std::sin(0.07 * i)};
    auto w = v;
    hpcc::fft(w, false, pool);
    hpcc::fft(w, true, pool);
    double worst = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) worst = std::max(worst, std::abs(w[i] - v[i]));
    std::printf("  host FFT n=%zu: round-trip max error %.2e\n\n", v.size(), worst);
    run.record("host/fft-roundtrip-max-error", worst, "abs");
  }

  // (A) HPL single node.
  BarChart hpl_chart("Fig. 9A — HPL GF/s per node (parenthesis: % of peak)", 45);
  hpcc::LibraryPoint fj_hpl{"Ookami", "fujitsu-blas", 0.0};
  double fj = 0.0, ob = 0.0;
  for (const auto& pt : hpcc::fig9a_hpl_points()) {
    const double gf = hpcc::system_model(pt.system).peak_gflops_node() * pt.fraction_of_peak;
    hpl_chart.add(pt.system + "/" + pt.library, gf,
                  "(" + TextTable::num(100.0 * pt.fraction_of_peak, 0) + "%)");
    run.record("hpl/" + pt.system + "/" + pt.library, gf, "GF/s",
               harness::Direction::kHigherIsBetter);
    if (pt.system == "Ookami" && pt.library == "fujitsu-blas") {
      fj = gf;
      fj_hpl = pt;
    }
    if (pt.system == "Ookami" && pt.library == "openblas") ob = gf;
  }
  std::printf("%s\n", hpl_chart.str().c_str());

  // (B) HPL multi-node.
  GroupedSeries hpl_scale("Fig. 9B — HPL GF/s, weak scaling N=20000*sqrt(nodes)", "nodes");
  for (int nodes : {1, 2, 4, 8}) {
    hpl_scale.set(std::to_string(nodes), "fujitsu-blas+fujitsu-mpi",
                  hpcc::hpl_multinode_gflops(fj_hpl, netsim::fujitsu_mpi(), nodes));
    hpl_scale.set(std::to_string(nodes), "armpl+openmpi",
                  hpcc::hpl_multinode_gflops({"Ookami", "armpl", 0.45},
                                             netsim::openmpi_armpl(), nodes));
  }
  std::printf("%s\n", hpl_scale.table(0).c_str());
  write_file(report::artifact_path("fig9b_hpl_scaling.csv"), hpl_scale.csv());
  run.record_grouped(hpl_scale, "GF/s", harness::Direction::kHigherIsBetter);

  // (C) FFT single node.
  BarChart fft_chart("Fig. 9C — FFT GF/s per node (parenthesis: % of peak)", 45);
  hpcc::LibraryPoint fj_fft{"Ookami", "fujitsu-fftw", 0.0};
  double fjf = 0.0, fw = 0.0;
  for (const auto& pt : hpcc::fig9c_fft_points()) {
    const double gf = hpcc::system_model(pt.system).peak_gflops_node() * pt.fraction_of_peak;
    fft_chart.add(pt.system + "/" + pt.library, gf,
                  "(" + TextTable::num(100.0 * pt.fraction_of_peak, 1) + "%)");
    run.record("fft/" + pt.system + "/" + pt.library, gf, "GF/s",
               harness::Direction::kHigherIsBetter);
    if (pt.system == "Ookami" && pt.library == "fujitsu-fftw") {
      fjf = gf;
      fj_fft = pt;
    }
    if (pt.system == "Ookami" && pt.library == "fftw") fw = gf;
  }
  std::printf("%s\n", fft_chart.str().c_str());

  // (D) FFT multi-node.
  GroupedSeries fft_scale("Fig. 9D — FFT GF/s, weak scaling V=20000^2*nodes", "nodes");
  for (int nodes : {1, 2, 4, 8}) {
    fft_scale.set(std::to_string(nodes), "fujitsu-fftw+fujitsu-mpi",
                  hpcc::fft_multinode_gflops(fj_fft, netsim::fujitsu_mpi(), nodes));
    fft_scale.set(std::to_string(nodes), "fftw+openmpi",
                  hpcc::fft_multinode_gflops({"Ookami", "fftw", 0.0052},
                                             netsim::openmpi_armpl(), nodes));
  }
  std::printf("%s\n", fft_scale.table(0).c_str());
  write_file(report::artifact_path("fig9d_fft_scaling.csv"), fft_scale.csv());
  run.record_grouped(fft_scale, "GF/s", harness::Direction::kHigherIsBetter);

  const double fj8 = hpcc::hpl_multinode_gflops(fj_hpl, netsim::fujitsu_mpi(), 8);
  const double arm8 = hpcc::hpl_multinode_gflops({"Ookami", "armpl", 0.45},
                                                 netsim::openmpi_armpl(), 8);
  const double fft1 = hpcc::fft_multinode_gflops(fj_fft, netsim::fujitsu_mpi(), 1);
  const double fft8 = hpcc::fft_multinode_gflops(fj_fft, netsim::fujitsu_mpi(), 8);
  const std::vector<report::ClaimCheck> claims = {
      {"fig9a/openblas-ratio", "Fujitsu HPL ~10x OpenBLAS", 10.0, fj / ob, 1.2},
      {"fig9b/fujitsu-scaling", "Fujitsu MPI efficiency at 8 nodes well below 1", 0.45,
       fj8 / (8.0 * hpcc::hpl_multinode_gflops(fj_hpl, netsim::fujitsu_mpi(), 1)), 1.8},
      {"fig9b/armpl-better", "ARMPL/OpenMPI outscales Fujitsu at 8 nodes", 1.5, arm8 / fj8,
       2.0},
      {"fig9c/fftw-ratio", "Fujitsu FFTW 4.2x plain FFTW", 4.2, fjf / fw, 1.2},
      {"fig9d/flat", "multi-node FFT relatively flat (8-node speedup << 8)", 2.0, fft8 / fft1,
       2.0},
  };
  run.check("Figure 9", claims);
  return 0;
}
