// Figure 1: runtime on A64FX of the simple vector loops (simple,
// predicate, gather, scatter, short-gather, short-scatter) compiled
// with different toolchains, relative to the Intel compiler on Skylake.
//
// The executable kernels are first run through the SVE emulation to
// confirm numerical correctness, then each (loop, toolchain) pair is
// priced by the machine model and normalized to Intel/Skylake.

#include <cstdio>

#include "ookami/common/table.hpp"
#include "ookami/harness/harness.hpp"
#include "ookami/loops/kernels.hpp"
#include "ookami/report/report.hpp"
#include "ookami/toolchain/toolchain.hpp"

using namespace ookami;
using toolchain::Toolchain;

OOKAMI_BENCH(fig1_simple_loops) {
  const auto& a64fx = perf::a64fx();
  const auto& skl = perf::skylake_6140();

  std::printf("Fig. 1 — simple vector loops, runtime relative to Intel/Skylake\n");
  std::printf("(correctness: every kernel's SVE-emulation output checked against scalar)\n\n");

  GroupedSeries fig("relative runtime (A64FX vs Intel/SKL = 1)", "loop");
  for (auto kind : loops::fig1_loop_kinds()) {
    const double worst_ulp = loops::max_ulp_scalar_vs_sve(kind);
    const double intel = toolchain::kernel_cycles_per_elem(kind, Toolchain::kIntel, skl) /
                         skl.boost_ghz;
    for (auto tc : toolchain::a64fx_toolchains()) {
      const double t =
          toolchain::kernel_cycles_per_elem(kind, tc, a64fx) / a64fx.boost_ghz;
      fig.set(loops::loop_name(kind), toolchain::policy(tc).name, t / intel);
    }
    std::printf("  %-14s kernel verified (max %g ulp scalar-vs-SVE)\n",
                loops::loop_name(kind).c_str(), worst_ulp);
  }
  std::printf("\n%s\n%s", fig.table().c_str(), fig.bars().c_str());
  write_file(report::artifact_path("fig1_simple_loops.csv"), fig.csv());
  run.record_grouped(fig, "rel");

  const std::vector<report::ClaimCheck> claims = {
      {"fig1/simple/fujitsu", "simple loop ~2x (clock ratio)", 2.0,
       fig.get("simple", "fujitsu"), 1.35},
      {"fig1/predicate/fujitsu", "predicate loop ~3x", 3.0, fig.get("predicate", "fujitsu"),
       1.35},
      {"fig1/gather/fujitsu", "gather ~2x", 2.0, fig.get("gather", "fujitsu"), 1.35},
      {"fig1/short-gather/fujitsu", "short gather ~1.5x (128-B pair fusion)", 1.5,
       fig.get("short-gather", "fujitsu"), 1.35},
  };
  run.check("Figure 1", claims);
  return 0;
}
