// Tests for the src/metrics subsystem: histogram bucket math
// (boundaries, merge, quantile interpolation), the counter sampler's
// graceful-degradation path under a simulated EPERM, the registry's
// get-or-create semantics and Prometheus exporter, the RegionProfiler's
// trace-hook attribution, and the measured-vs-modeled verdict join.

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "ookami/metrics/metrics.hpp"
#include "ookami/trace/aggregate.hpp"
#include "ookami/trace/trace.hpp"

namespace ookami::metrics {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ----------------------------------------------------- histogram math

HistogramOptions small_opts() {
  HistogramOptions o;
  o.min_value = 1.0e-3;
  o.growth = 2.0;
  o.max_buckets = 8;
  return o;
}

TEST(Histogram, BucketBoundariesAreHalfOpenGeometric) {
  const Histogram h(small_opts());
  // bucket 0: v <= 1e-3 (underflow, negatives included).
  EXPECT_EQ(h.bucket_index(-1.0), 0u);
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0e-3), 0u);
  // bucket i: min*g^(i-1) < v <= min*g^i — boundaries land low.
  EXPECT_EQ(h.bucket_index(1.001e-3), 1u);
  EXPECT_EQ(h.bucket_index(2.0e-3), 1u);
  EXPECT_EQ(h.bucket_index(2.001e-3), 2u);
  EXPECT_EQ(h.bucket_index(4.0e-3), 2u);
  // 8 buckets: 0 underflow, 1..6 spans, 7 overflow.  Bucket 6's upper
  // bound is min*g^6 = 0.064; anything above lands in overflow.
  EXPECT_EQ(h.bucket_index(0.064), 6u);
  EXPECT_EQ(h.bucket_index(0.065), 7u);
  EXPECT_EQ(h.bucket_index(1.0e9), 7u);

  EXPECT_DOUBLE_EQ(h.bucket_upper(0), 1.0e-3);
  EXPECT_NEAR(h.bucket_upper(1), 2.0e-3, 1e-15);
  EXPECT_NEAR(h.bucket_upper(6), 0.064, 1e-12);
  EXPECT_TRUE(std::isinf(h.bucket_upper(7)));
  // bucket_upper is the inclusive bound bucket_index honours.
  for (std::size_t i = 0; i + 1 < small_opts().max_buckets; ++i) {
    EXPECT_EQ(h.bucket_index(h.bucket_upper(i)), i == 0 ? 0u : i);
  }
}

TEST(Histogram, ObserveTracksExactStatsAndIgnoresNan) {
  Histogram h(small_opts());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.mean()));

  h.observe(0.004);
  h.observe(0.002);
  h.observe(0.010);
  h.observe(kNaN);  // dropped, not counted
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.002);
  EXPECT_DOUBLE_EQ(h.max(), 0.010);
  EXPECT_NEAR(h.sum(), 0.016, 1e-15);
  EXPECT_NEAR(h.mean(), 0.016 / 3.0, 1e-15);

  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), small_opts().max_buckets);
  std::uint64_t total = 0;
  for (const auto c : buckets) total += c;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(buckets[h.bucket_index(0.002)], 1u);
  EXPECT_EQ(buckets[h.bucket_index(0.004)], 1u);
  EXPECT_EQ(buckets[h.bucket_index(0.010)], 1u);
}

TEST(Histogram, UnderflowAndOverflowSamplesAreKept) {
  Histogram h(small_opts());
  h.observe(-5.0);    // underflow
  h.observe(1000.0);  // overflow
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets.front(), 1u);
  EXPECT_EQ(buckets.back(), 1u);
}

TEST(Histogram, MergeSumsBucketsAndRejectsLayoutMismatch) {
  Histogram a(small_opts());
  Histogram b(small_opts());
  a.observe(0.002);
  a.observe(0.004);
  b.observe(0.004);
  b.observe(5.0);  // overflow in b

  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min(), 0.002);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_NEAR(a.sum(), 0.002 + 0.004 + 0.004 + 5.0, 1e-12);
  EXPECT_EQ(a.buckets()[a.bucket_index(0.004)], 2u);
  EXPECT_EQ(a.buckets().back(), 1u);
  // b is untouched.
  EXPECT_EQ(b.count(), 2u);

  // Merging into an empty histogram adopts the other's min/max.
  Histogram c(small_opts());
  c.merge(b);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.min(), 0.004);
  EXPECT_DOUBLE_EQ(c.max(), 5.0);

  // Self-merge must not deadlock and doubles the counts.
  c.merge(c);
  EXPECT_EQ(c.count(), 4u);

  HistogramOptions other = small_opts();
  other.growth = 3.0;
  Histogram d(other);
  EXPECT_THROW(a.merge(d), std::invalid_argument);
  other = small_opts();
  other.max_buckets = 16;
  Histogram e(other);
  EXPECT_THROW(a.merge(e), std::invalid_argument);
}

TEST(Histogram, SingleBucketQuantilesAreBucketClamped) {
  Histogram h(small_opts());
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));

  // 100 samples spread evenly inside the (2e-3, 4e-3] bucket.  The
  // histogram only knows "100 samples somewhere in this bucket" — it
  // has no intra-bucket rank information, so interpolating a spread
  // (p10 < p50 < p90) would be fabricated.  The contract: every
  // interior quantile returns the same bucket-clamped estimate, within
  // a factor of sqrt(growth) of any true interior quantile.
  for (int i = 1; i <= 100; ++i) h.observe(2.0e-3 + 2.0e-5 * i);
  const double p10 = h.quantile(0.10);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  EXPECT_DOUBLE_EQ(p10, p50);
  EXPECT_DOUBLE_EQ(p50, p90);
  // The estimate stays inside the occupied bucket (tightened by the
  // observed extremes) and within sqrt(2) of the true percentiles.
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p50, h.max());
  const double true_p50 = 2.0e-3 + 2.0e-5 * 50;
  EXPECT_LE(p50 / true_p50, std::sqrt(2.0) + 1e-12);
  EXPECT_LE(true_p50 / p50, std::sqrt(2.0) + 1e-12);

  // q=0 and q=1 return the exact observed extremes, not bucket edges.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(Histogram, SingleBucketEstimateConsistentInOverflowAndUnderflow) {
  // Underflow bucket has no finite lower edge, overflow no finite
  // upper edge: the single-bucket estimate must still be one finite
  // value clamped to the observed range.
  Histogram under(small_opts());
  under.observe(1.0e-4);
  under.observe(5.0e-4);
  const double u = under.quantile(0.5);
  EXPECT_DOUBLE_EQ(under.quantile(0.25), u);
  EXPECT_GE(u, 1.0e-4);
  EXPECT_LE(u, 5.0e-4);

  Histogram over(small_opts());
  over.observe(1.0);
  over.observe(2.0);
  const double o = over.quantile(0.5);
  EXPECT_DOUBLE_EQ(over.quantile(0.99), o);
  EXPECT_GE(o, 1.0);
  EXPECT_LE(o, 2.0);
}

TEST(Histogram, QuantileClampsToObservedRangeForSingleSample) {
  Histogram h(small_opts());
  h.observe(0.003);
  // One sample: every quantile is that sample, despite the bucket
  // spanning (2e-3, 4e-3].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.003);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.003);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.003);
}

TEST(Histogram, QuantileWalksCumulativeCountsAcrossBuckets) {
  Histogram h(small_opts());
  // 90 samples in the (1e-3, 2e-3] bucket, 10 in (8e-3, 16e-3].
  for (int i = 0; i < 90; ++i) h.observe(1.5e-3);
  for (int i = 0; i < 10; ++i) h.observe(1.0e-2);
  EXPECT_LE(h.quantile(0.50), 2.0e-3);
  EXPECT_GT(h.quantile(0.95), 8.0e-3);
  EXPECT_LE(h.quantile(0.95), 1.6e-2);
}

// ------------------------------------------------- sampler fallback

TEST(CounterSampler, SimulatedEpermFallsBackToSoftware) {
  SamplerConfig cfg;
  cfg.simulate_errno = EPERM;
  const CounterSampler sampler(cfg);
  EXPECT_EQ(sampler.backend(), Backend::kSoftware);
  // The archived reason names the failing syscall, the errno text, and
  // that it was simulated.
  EXPECT_NE(sampler.backend_reason().find("perf_event_open"), std::string::npos);
  EXPECT_NE(sampler.backend_reason().find(std::strerror(EPERM)), std::string::npos);
  EXPECT_NE(sampler.backend_reason().find("simulated"), std::string::npos);

  // Hardware counters are unavailable; the software sources still work.
  EXPECT_FALSE(sampler.counter_available(CounterId::kInstructions));
  EXPECT_FALSE(sampler.counter_available(CounterId::kCycles));
  EXPECT_FALSE(sampler.counter_available(CounterId::kCacheMisses));

  const CounterSet before = sampler.read();
  EXPECT_FALSE(before.has(CounterId::kInstructions));
  EXPECT_TRUE(before.has(CounterId::kPageFaults));  // getrusage
  // Burn some wall time so the delta is visibly positive.
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(2)) {
  }
  const CounterSet d = sampler.read().delta(before);
  EXPECT_GE(d.wall_s, 0.002);
  EXPECT_GE(d.cpu_s, 0.0);
  // Rates needing hardware counters degrade to NaN, never to 0.
  EXPECT_TRUE(std::isnan(d.ipc()));
  EXPECT_TRUE(std::isnan(d.cache_miss_rate()));
}

TEST(CounterSampler, SoftwareBackendCanBeForced) {
  SamplerConfig cfg;
  cfg.allow_perf = false;
  const CounterSampler sampler(cfg);
  EXPECT_EQ(sampler.backend(), Backend::kSoftware);
  EXPECT_NE(sampler.backend_reason().find("requested"), std::string::npos);
}

TEST(CounterSampler, DefaultConstructionAlwaysYieldsAWorkingBackend) {
  // Whatever this host permits, construction must succeed and read()
  // must produce monotone software sources.
  const CounterSampler sampler;
  EXPECT_FALSE(sampler.backend_reason().empty());
  const CounterSet a = sampler.read();
  const CounterSet b = sampler.read();
  EXPECT_GE(b.wall_s, a.wall_s);
  if (sampler.backend() == Backend::kPerfEvent) {
    // perf only wins when at least one of instructions/cycles opened.
    EXPECT_TRUE(sampler.counter_available(CounterId::kInstructions) ||
                sampler.counter_available(CounterId::kCycles));
  }
}

TEST(CounterSet, DeltaAndDerivedRates) {
  CounterSet a;
  a.set(CounterId::kInstructions, 1000.0);
  a.set(CounterId::kCycles, 500.0);
  a.set(CounterId::kCacheRefs, 100.0);
  a.set(CounterId::kCacheMisses, 25.0);
  a.set(CounterId::kBranchMisses, 4.0);
  a.cpu_s = 1.0;
  a.wall_s = 2.0;
  CounterSet b;
  b.set(CounterId::kInstructions, 4000.0);
  b.set(CounterId::kCycles, 1500.0);
  b.set(CounterId::kCacheRefs, 300.0);
  b.set(CounterId::kCacheMisses, 35.0);
  // kBranchMisses intentionally missing on one side.
  b.cpu_s = 1.5;
  b.wall_s = 3.0;

  const CounterSet d = b.delta(a);
  EXPECT_DOUBLE_EQ(d.get(CounterId::kInstructions), 3000.0);
  EXPECT_DOUBLE_EQ(d.get(CounterId::kCycles), 1000.0);
  EXPECT_FALSE(d.has(CounterId::kBranchMisses));  // valid on one side only
  EXPECT_DOUBLE_EQ(d.cpu_s, 0.5);
  EXPECT_DOUBLE_EQ(d.wall_s, 1.0);
  EXPECT_DOUBLE_EQ(d.ipc(), 3.0);
  EXPECT_DOUBLE_EQ(d.cache_miss_rate(), 10.0 / 200.0);
  EXPECT_TRUE(std::isnan(d.branch_miss_per_kinst()));

  CounterSet acc;
  acc.accumulate(d);
  acc.accumulate(d);
  EXPECT_DOUBLE_EQ(acc.get(CounterId::kInstructions), 6000.0);
  EXPECT_DOUBLE_EQ(acc.cpu_s, 1.0);

  // Zero-cycle delta: IPC must be NaN, not inf.
  CounterSet z;
  z.set(CounterId::kInstructions, 10.0);
  z.set(CounterId::kCycles, 0.0);
  EXPECT_TRUE(std::isnan(z.ipc()));
}

// ----------------------------------------------------------- registry

TEST(Registry, GetOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& c1 = reg.counter("events");
  c1.add(3);
  Counter& c2 = reg.counter("events");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);

  Gauge& g = reg.gauge("temp");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("temp").value(), 1.5);

  Histogram& h1 = reg.histogram("lat", small_opts());
  h1.observe(0.002);
  Histogram& h2 = reg.histogram("lat", small_opts());
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.count(), 1u);
  // Same name, different layout: a silent re-bucket would corrupt the
  // series, so it throws.
  HistogramOptions other = small_opts();
  other.growth = 10.0;
  EXPECT_THROW(reg.histogram("lat", other), std::invalid_argument);

  EXPECT_EQ(reg.histogram_names().size(), 1u);
  EXPECT_NE(reg.find_histogram("lat"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
}

TEST(Registry, PrometheusExpositionFormat) {
  Registry reg;
  reg.counter("total/events").add(7);
  reg.gauge("cache miss-rate").set(0.25);
  Histogram& h = reg.histogram("latency/spmv", small_opts());
  h.observe(0.002);
  h.observe(0.003);
  h.observe(100.0);  // overflow

  const std::string text = reg.to_prometheus("ookami");
  // Names are sanitized into the Prometheus charset and prefixed.
  EXPECT_NE(text.find("# TYPE ookami_total_events counter"), std::string::npos);
  EXPECT_NE(text.find("ookami_total_events 7"), std::string::npos);
  EXPECT_NE(text.find("ookami_cache_miss_rate 0.25"), std::string::npos);
  // Histogram: cumulative buckets with le labels, +Inf, _sum and _count.
  EXPECT_NE(text.find("# TYPE ookami_latency_spmv histogram"), std::string::npos);
  EXPECT_NE(text.find("ookami_latency_spmv_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("ookami_latency_spmv_count 3"), std::string::npos);
  EXPECT_NE(text.find("ookami_latency_spmv_sum"), std::string::npos);
  // Cumulative counts never decrease along the le ladder: the bucket
  // before +Inf already holds the two in-range samples.
  EXPECT_NE(text.find("} 2\n"), std::string::npos);
}

TEST(Histogram, ExemplarsPinLastSampleWithTraceIdPerBucket) {
  Histogram h(small_opts());
  h.observe(0.002);  // plain observe: no exemplar storage at all
  EXPECT_TRUE(h.exemplars().empty());

  h.observe(0.004, 0xdeadbeefull);
  auto ex = h.exemplars();
  ASSERT_EQ(ex.size(), small_opts().max_buckets);
  const std::size_t b = h.bucket_index(0.004);
  EXPECT_EQ(ex[b].trace_id, 0xdeadbeefull);
  EXPECT_DOUBLE_EQ(ex[b].value, 0.004);
  EXPECT_GT(ex[b].timestamp_s, 0.0);

  // Last write wins within the bucket (0.0039 shares 0.004's bucket).
  h.observe(0.0039, 0x1111ull);
  ex = h.exemplars();
  EXPECT_EQ(ex[b].trace_id, 0x1111ull);
  EXPECT_DOUBLE_EQ(ex[b].value, 0.0039);

  // id 0 degrades to a plain observe: count moves, exemplar stays.
  h.observe(0.0038, 0);
  ex = h.exemplars();
  EXPECT_EQ(ex[b].trace_id, 0x1111ull);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, MergeKeepsNewestExemplarPerBucket) {
  Histogram a(small_opts());
  Histogram b(small_opts());
  a.observe(0.002, 0xaaaull);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  b.observe(0.002, 0xbbbull);  // newer timestamp, same bucket
  b.observe(5.0, 0xcccull);    // a bucket `a` never touched

  a.merge(b);
  const auto ex = a.exemplars();
  const std::size_t shared = a.bucket_index(0.002);
  EXPECT_EQ(ex[shared].trace_id, 0xbbbull);
  EXPECT_EQ(ex[a.bucket_index(5.0)].trace_id, 0xcccull);
  // Copy snapshots carry exemplars too.
  const Histogram snap(a);
  EXPECT_EQ(snap.exemplars()[shared].trace_id, 0xbbbull);
}

TEST(Registry, PrometheusBucketsCarryOpenMetricsExemplars) {
  Registry reg;
  Histogram& h = reg.histogram("latency/spmv", small_opts());
  h.observe(0.002, 0x00ab00cd00ef0011ull);
  h.observe(100.0);  // occupied bucket without an exemplar: plain line

  const std::string text = reg.to_prometheus("ookami");
  EXPECT_NE(text.find("# {trace_id=\"00ab00cd00ef0011\"} 0.002"), std::string::npos);
  // The +Inf line has no exemplar suffix.
  const std::size_t inf = text.find("_bucket{le=\"+Inf\"}");
  ASSERT_NE(inf, std::string::npos);
  const std::size_t eol = text.find('\n', inf);
  EXPECT_EQ(text.substr(inf, eol - inf).find("trace_id"), std::string::npos);
}

TEST(Registry, CounterAndGaugeSnapshotsKeepRawNames) {
  Registry reg;
  reg.counter("serve/requests_total").add(3);
  reg.gauge("serve/queue_depth").set(2.0);
  const auto counters = reg.counter_values();
  const auto gauges = reg.gauge_values();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "serve/requests_total");
  EXPECT_EQ(counters[0].second, 3u);
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].first, "serve/queue_depth");
  EXPECT_DOUBLE_EQ(gauges[0].second, 2.0);
}

TEST(Registry, PrometheusNameSanitization) {
  EXPECT_EQ(prometheus_name("latency/cg.spmv-1"), "latency_cg_spmv_1");
  EXPECT_EQ(prometheus_name("ok_name09"), "ok_name09");
}

TEST(Registry, PrometheusNameCollapsesInvalidRunsAndDigitStart) {
  // A run of consecutive invalid characters becomes ONE underscore, so
  // "a//b" and "a/b" sanitize identically instead of aliasing into
  // different-looking names.
  EXPECT_EQ(prometheus_name("serve/latency//vecmath.exp"), "serve_latency_vecmath_exp");
  EXPECT_EQ(prometheus_name("a - b"), "a_b");
  EXPECT_EQ(prometheus_name("a_/b"), "a_b");  // merges with a literal '_'
  // Digit-start names get a '_' prefix (Prometheus names cannot start
  // with a digit); empty input degrades to a single '_'.
  EXPECT_EQ(prometheus_name("9latency"), "_9latency");
  EXPECT_EQ(prometheus_name("99"), "_99");
  EXPECT_EQ(prometheus_name(""), "_");
  EXPECT_EQ(prometheus_name("///"), "_");
}

// ------------------------------------------- region profiler + hooks

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(true);
    trace::clear();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
  }
};

TEST_F(ProfilerTest, AttributesCountersToRegionsByName) {
  SamplerConfig cfg;
  cfg.simulate_errno = EPERM;  // deterministic software backend
  const CounterSampler sampler(cfg);
  RegionProfiler profiler(sampler);
  profiler.attach();
  EXPECT_TRUE(profiler.attached());

  const auto spin = [] {
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(2)) {
    }
  };
  {
    OOKAMI_TRACE_SCOPE("prof/outer");
    spin();
    {
      OOKAMI_TRACE_SCOPE("prof/inner");
      spin();
    }
    { OOKAMI_TRACE_SCOPE("prof/inner"); }
  }
  profiler.detach();
  EXPECT_FALSE(profiler.attached());

  const auto regions = profiler.collect();
  ASSERT_EQ(regions.size(), 2u);  // sorted by name
  EXPECT_EQ(regions[0].name, "prof/inner");
  EXPECT_EQ(regions[1].name, "prof/outer");
  EXPECT_EQ(regions[0].count, 2u);
  EXPECT_EQ(regions[1].count, 1u);
  // The software backend still yields wall-time attribution, and the
  // exclusive replay subtracts the inner region from the outer.
  const auto& outer = regions[1];
  EXPECT_GE(outer.inclusive.wall_s, 0.004);
  EXPECT_GE(outer.exclusive.wall_s, 0.0);
  EXPECT_LT(outer.exclusive.wall_s, outer.inclusive.wall_s);
  EXPECT_NEAR(outer.exclusive.wall_s + regions[0].inclusive.wall_s, outer.inclusive.wall_s,
              1e-3);

  profiler.clear();
  EXPECT_TRUE(profiler.collect().empty());
}

TEST_F(ProfilerTest, AggregatesAcrossThreads) {
  SamplerConfig cfg;
  cfg.simulate_errno = EPERM;
  const CounterSampler sampler(cfg);
  RegionProfiler profiler(sampler);
  profiler.attach();
  std::thread a([] { OOKAMI_TRACE_SCOPE("mt/region"); });
  std::thread b([] { OOKAMI_TRACE_SCOPE("mt/region"); });
  a.join();
  b.join();
  { OOKAMI_TRACE_SCOPE("mt/region"); }
  profiler.detach();
  const auto regions = profiler.collect();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].count, 3u);
}

TEST_F(ProfilerTest, SecondAttachThrowsAndDetachReleasesTheSlot) {
  SamplerConfig cfg;
  cfg.allow_perf = false;
  const CounterSampler sampler(cfg);
  RegionProfiler first(sampler);
  RegionProfiler second(sampler);
  first.attach();
  EXPECT_THROW(second.attach(), std::logic_error);
  first.detach();
  second.attach();  // slot released
  second.detach();
}

TEST_F(ProfilerTest, IgnoresScopesOutsideAttachment) {
  SamplerConfig cfg;
  cfg.allow_perf = false;
  const CounterSampler sampler(cfg);
  RegionProfiler profiler(sampler);
  { OOKAMI_TRACE_SCOPE("before/attach"); }  // hooks not installed yet
  {
    // A scope already open at attach time delivers an end without its
    // begin; the profiler must drop it rather than corrupt the stack.
    trace::Scope dangling("half/open");
    profiler.attach();
  }
  { OOKAMI_TRACE_SCOPE("during/attach"); }
  profiler.detach();
  { OOKAMI_TRACE_SCOPE("after/detach"); }
  const auto regions = profiler.collect();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].name, "during/attach");
}

// -------------------------------------------- measured-vs-modeled join

trace::RegionStats model_region(const std::string& name, trace::Bound bound, double flops,
                                double exclusive_s = 1.0) {
  trace::RegionStats r;
  r.name = name;
  r.count = 1;
  r.inclusive_s = exclusive_s;
  r.exclusive_s = exclusive_s;
  r.flops = flops;
  r.bytes = flops > 0.0 ? 1.0 : 0.0;
  r.bound = bound;
  return r;
}

RegionCounters measured_counters(const std::string& name, double cache_misses) {
  RegionCounters c;
  c.name = name;
  c.count = 1;
  c.exclusive.set(CounterId::kInstructions, 1.0e9);
  c.exclusive.set(CounterId::kCycles, 0.5e9);
  c.exclusive.set(CounterId::kCacheRefs, cache_misses * 2.0);
  c.exclusive.set(CounterId::kCacheMisses, cache_misses);
  c.inclusive = c.exclusive;
  return c;
}

// balance = 100/10 = 10 flop/B.
trace::Roofline test_roofline() { return {"test", 100.0, 10.0}; }

TEST(Join, VerdictAgreeWhenModelAndMachineMatch) {
  // Model says memory-bound; machine moves lots of traffic: 1e9 flops
  // over 1e7 misses * 64 B = 6.4e8 B -> intensity ~1.6 < balance 10.
  const auto model = model_region("r", trace::Bound::kMemory, 1.0e9);
  const auto counters = measured_counters("r", 1.0e7);
  const MeasuredRegion m = join_region(model, &counters, test_roofline());
  EXPECT_TRUE(m.measured);
  EXPECT_EQ(m.measured_bound, trace::Bound::kMemory);
  EXPECT_EQ(m.verdict, Verdict::kAgree);
  EXPECT_DOUBLE_EQ(m.ipc, 2.0);
  EXPECT_DOUBLE_EQ(m.cache_miss_rate, 0.5);
  EXPECT_NEAR(m.measured_bytes, 6.4e8, 1.0);
  EXPECT_NEAR(m.measured_gbs, 0.64, 1e-9);                  // over 1 s exclusive
  EXPECT_NEAR(m.measured_intensity, 1.0e9 / 6.4e8, 1e-9);
}

TEST(Join, VerdictModelOptimisticWhenMachineIsMemoryBound) {
  // Model claims compute-bound but the machine's traffic prices the
  // same flops below the balance.
  const auto model = model_region("r", trace::Bound::kCompute, 1.0e9);
  const auto counters = measured_counters("r", 1.0e7);  // intensity ~1.6
  EXPECT_EQ(join_region(model, &counters, test_roofline()).verdict,
            Verdict::kModelOptimistic);
}

TEST(Join, VerdictModelPessimisticWhenWorkingSetCached) {
  // Model claims memory-bound, but the machine barely missed: 1e9 flops
  // over 1e3 misses * 64 B -> intensity ~1.6e4 >> balance.
  const auto model = model_region("r", trace::Bound::kMemory, 1.0e9);
  const auto counters = measured_counters("r", 1.0e3);
  EXPECT_EQ(join_region(model, &counters, test_roofline()).verdict,
            Verdict::kModelPessimistic);

  // Zero measured traffic: fully cached, compute-bound by definition.
  const auto cached = measured_counters("r", 0.0);
  const MeasuredRegion m = join_region(model, &cached, test_roofline());
  EXPECT_TRUE(std::isinf(m.measured_intensity));
  EXPECT_EQ(m.verdict, Verdict::kModelPessimistic);
}

TEST(Join, VerdictUnmeasuredWithoutHardwareCounters) {
  const auto model = model_region("r", trace::Bound::kMemory, 1.0e9);
  // Software-backend counters: only wall/cpu/page faults, no cache data.
  RegionCounters soft;
  soft.name = "r";
  soft.count = 1;
  soft.exclusive.set(CounterId::kPageFaults, 12.0);
  soft.exclusive.wall_s = 1.0;
  const MeasuredRegion m = join_region(model, &soft, test_roofline());
  EXPECT_FALSE(m.measured);
  EXPECT_EQ(m.verdict, Verdict::kUnmeasured);
  EXPECT_TRUE(std::isnan(m.ipc));
  EXPECT_DOUBLE_EQ(m.page_faults, 12.0);
  // Never-sampled region: same verdict through the nullptr path.
  EXPECT_EQ(join_region(model, nullptr, test_roofline()).verdict, Verdict::kUnmeasured);
}

TEST(Join, VerdictUnmodeledWinsOverMeasurement) {
  // No annotations: there is no model verdict to compare against, even
  // with perfect counters.
  const auto model = model_region("r", trace::Bound::kUnknown, 0.0);
  const auto counters = measured_counters("r", 1.0e6);
  EXPECT_EQ(join_region(model, &counters, test_roofline()).verdict, Verdict::kUnmodeled);
}

TEST(Join, ReportJoinMatchesByNameAndPreservesOrder) {
  trace::Report report;
  report.roofline = test_roofline();
  report.regions.push_back(model_region("b", trace::Bound::kMemory, 1.0e9));
  report.regions.push_back(model_region("a", trace::Bound::kUnknown, 0.0));
  std::vector<RegionCounters> counters;
  counters.push_back(measured_counters("b", 1.0e7));

  const auto joined = join_report(report, counters);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined[0].name, "b");
  EXPECT_EQ(joined[0].verdict, Verdict::kAgree);
  EXPECT_EQ(joined[1].name, "a");
  EXPECT_EQ(joined[1].verdict, Verdict::kUnmodeled);
}

TEST(Join, VerdictNamesAreStableSlugs) {
  EXPECT_STREQ(verdict_name(Verdict::kAgree), "agree");
  EXPECT_STREQ(verdict_name(Verdict::kModelOptimistic), "model-optimistic");
  EXPECT_STREQ(verdict_name(Verdict::kModelPessimistic), "model-pessimistic");
  EXPECT_STREQ(verdict_name(Verdict::kUnmeasured), "unmeasured");
  EXPECT_STREQ(verdict_name(Verdict::kUnmodeled), "unmodeled");
}

}  // namespace
}  // namespace ookami::metrics
