// LULESH proxy tests: conservation, symmetry, base/vect equivalence,
// thread invariance, and blast propagation physics.

#include <gtest/gtest.h>

#include "ookami/lulesh/lulesh.hpp"

namespace ookami::lulesh {
namespace {

Options small(Variant v, unsigned threads = 1) {
  Options o;
  o.edge_elems = 12;
  o.max_steps = 50;
  o.variant = v;
  o.threads = threads;
  return o;
}

TEST(Lulesh, EnergyConservedToRoundoff) {
  const Outcome out = run_sedov(small(Variant::kBase));
  EXPECT_TRUE(out.verified);
  EXPECT_LT(out.total_energy_drift, 1e-7);
}

TEST(Lulesh, OctantSymmetryExact) {
  const Outcome out = run_sedov(small(Variant::kBase));
  EXPECT_LT(out.symmetry_error, 1e-12);
}

TEST(Lulesh, BlastSpreadsEnergyOutward) {
  Options o = small(Variant::kBase);
  o.max_steps = 5;
  const Outcome early = run_sedov(o);
  const Outcome late = run_sedov(small(Variant::kBase));
  // Origin element loses energy to its neighbours over time.
  EXPECT_LT(late.final_origin_energy, early.final_origin_energy);
  EXPECT_GT(late.final_origin_energy, 0.0);
}

TEST(Lulesh, BaseAndVectProduceIdenticalPhysics) {
  const Outcome base = run_sedov(small(Variant::kBase));
  const Outcome vect = run_sedov(small(Variant::kVect));
  // Same arithmetic per element, different code shape: bit-identical.
  EXPECT_EQ(base.final_origin_energy, vect.final_origin_energy);
  EXPECT_EQ(base.total_energy_drift, vect.total_energy_drift);
}

class LuleshThreadTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LuleshThreadTest, ThreadCountInvariance) {
  const Outcome ref = run_sedov(small(Variant::kBase, 1));
  const Outcome par = run_sedov(small(Variant::kBase, GetParam()));
  EXPECT_EQ(ref.final_origin_energy, par.final_origin_energy);
  EXPECT_TRUE(par.verified);
}

INSTANTIATE_TEST_SUITE_P(Threads, LuleshThreadTest, ::testing::Values(2u, 4u));

TEST(Lulesh, LargerMeshStillVerifies) {
  Options o;
  o.edge_elems = 20;
  o.max_steps = 40;
  o.threads = 2;
  const Outcome out = run_sedov(o);
  EXPECT_TRUE(out.verified);
}

TEST(Lulesh, TableIIProfiles) {
  const auto base = table2_profile(Variant::kBase);
  const auto vect = table2_profile(Variant::kVect);
  // The Vect port's whole point: more vectorizable coverage.
  EXPECT_GT(vect.vec_fraction, base.vec_fraction);
  EXPECT_EQ(base.flops, vect.flops);
}

}  // namespace
}  // namespace ookami::lulesh
