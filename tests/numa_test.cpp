// NUMA simulation tests: page placement policies, compact thread
// binding, and the Figure-4 bandwidth mechanism (CMG-0 placement
// throttles a full-node memory-bound sweep; first touch does not).

#include <gtest/gtest.h>

#include "ookami/numa/numa.hpp"

namespace ookami::numa {
namespace {

using perf::a64fx;

TEST(PageMap, CompactThreadBinding) {
  const PageMap pm(a64fx().numa, Placement::kFirstTouch);
  EXPECT_EQ(pm.domain_of_thread(0, 48), 0);
  EXPECT_EQ(pm.domain_of_thread(11, 48), 0);
  EXPECT_EQ(pm.domain_of_thread(12, 48), 1);
  EXPECT_EQ(pm.domain_of_thread(47, 48), 3);
}

TEST(CompactBinding, FreeFunctionsMatchA64fxGeometry) {
  const auto& topo = a64fx().numa;
  EXPECT_EQ(domain_of_thread(topo, 0), 0);
  EXPECT_EQ(domain_of_thread(topo, 11), 0);
  EXPECT_EQ(domain_of_thread(topo, 12), 1);
  EXPECT_EQ(domain_of_thread(topo, 47), 3);
  // Beyond the machine: clamped to the last domain, never out of range.
  EXPECT_EQ(domain_of_thread(topo, 96), 3);
  EXPECT_EQ(compact_group_size(topo), 12);
  EXPECT_EQ(compact_group_count(topo, 1), 1);
  EXPECT_EQ(compact_group_count(topo, 12), 1);
  EXPECT_EQ(compact_group_count(topo, 13), 2);
  EXPECT_EQ(compact_group_count(topo, 48), 4);
  // More threads than cores still caps at the domain count.
  EXPECT_EQ(compact_group_count(topo, 96), 4);
}

TEST(CompactBinding, PageMapDelegatesToFreeFunction) {
  const PageMap pm(a64fx().numa, Placement::kFirstTouch);
  for (int t : {0, 11, 12, 35, 47}) {
    EXPECT_EQ(pm.domain_of_thread(t, 48), domain_of_thread(a64fx().numa, t));
  }
}

TEST(PageMap, FirstTouchFollowsTouchingThread) {
  PageMap pm(a64fx().numa, Placement::kFirstTouch);
  pm.touch(0, 0, 48);               // thread 0 -> domain 0
  pm.touch(1 << 20, 20, 48);        // thread 20 -> domain 1
  pm.touch(2 << 20, 40, 48);        // thread 40 -> domain 3
  EXPECT_EQ(pm.domain_of(0), 0);
  EXPECT_EQ(pm.domain_of(1 << 20), 1);
  EXPECT_EQ(pm.domain_of(2 << 20), 3);
  // Second touch does not migrate the page.
  pm.touch(0, 40, 48);
  EXPECT_EQ(pm.domain_of(0), 0);
}

TEST(PageMap, AllOnDomain0PlacesEverythingOnCmg0) {
  PageMap pm(a64fx().numa, Placement::kAllOnDomain0);
  for (int t = 0; t < 48; ++t) pm.touch(static_cast<std::size_t>(t) << 20, t, 48);
  const auto pages = pm.pages_per_domain();
  EXPECT_GT(pages[0], 0u);
  EXPECT_EQ(pages[1] + pages[2] + pages[3], 0u);
}

TEST(PageMap, InterleaveSpreadsRoundRobin) {
  PageMap pm(a64fx().numa, Placement::kInterleave);
  for (int p = 0; p < 16; ++p) pm.touch(static_cast<std::size_t>(p) * pm.page_bytes(), 0, 48);
  const auto pages = pm.pages_per_domain();
  for (auto c : pages) EXPECT_EQ(c, 4u);
}

TEST(PageMap, UntouchedPageHasNoDomain) {
  PageMap pm(a64fx().numa, Placement::kFirstTouch);
  EXPECT_EQ(pm.domain_of(12345), -1);
}

// --- The Figure 4 mechanism ---------------------------------------------------

constexpr std::size_t kStreamN = 64ull << 20;  // 64 Mi doubles: 1.5 GB of traffic

TEST(Stream, FirstTouchUsesAllControllersAt48Threads) {
  const auto ft = stream_triad(a64fx(), Placement::kFirstTouch, kStreamN, 48);
  // Near the aggregate 1 TB/s, far above one CMG's 256 GB/s.
  EXPECT_GT(ft.gbs, 600.0);
  int used = 0;
  for (double b : ft.domain_bytes) used += b > 0.0 ? 1 : 0;
  EXPECT_EQ(used, 4);
}

TEST(Stream, Cmg0PlacementCapsAtOneController) {
  const auto d0 = stream_triad(a64fx(), Placement::kAllOnDomain0, kStreamN, 48);
  EXPECT_LT(d0.gbs, 260.0);  // <= one CMG's HBM bandwidth
  EXPECT_EQ(d0.domain_bytes[1], 0.0);
  const auto ft = stream_triad(a64fx(), Placement::kFirstTouch, kStreamN, 48);
  EXPECT_GT(ft.gbs / d0.gbs, 3.0);  // the Fig. 4 fujitsu vs first-touch gap
}

TEST(Stream, PlacementIrrelevantWithinOneCmg) {
  const auto ft = stream_triad(a64fx(), Placement::kFirstTouch, kStreamN, 12);
  const auto d0 = stream_triad(a64fx(), Placement::kAllOnDomain0, kStreamN, 12);
  EXPECT_NEAR(ft.gbs, d0.gbs, 1.0);
}

TEST(Stream, SingleThreadIsCoreBandwidthBound) {
  const auto r = stream_triad(a64fx(), Placement::kFirstTouch, kStreamN, 1);
  EXPECT_NEAR(r.gbs, a64fx().core_mem_bw_gbs, 1.0);
}

TEST(Stream, InterleaveBetweenTheExtremes) {
  const auto ft = stream_triad(a64fx(), Placement::kFirstTouch, kStreamN, 48);
  const auto il = stream_triad(a64fx(), Placement::kInterleave, kStreamN, 48);
  const auto d0 = stream_triad(a64fx(), Placement::kAllOnDomain0, kStreamN, 48);
  EXPECT_GT(il.gbs, d0.gbs);
  EXPECT_LE(il.gbs, ft.gbs * 1.01);
}

}  // namespace
}  // namespace ookami::numa
