// Integration tests: full figure pipelines, asserting the paper's
// qualitative claims end-to-end through the library APIs (the same
// computations the bench binaries print).

#include <gtest/gtest.h>

#include <algorithm>

#include "ookami/lulesh/lulesh.hpp"
#include "ookami/npb/npb.hpp"
#include "ookami/perf/app_model.hpp"
#include "ookami/report/report.hpp"
#include "ookami/toolchain/toolchain.hpp"

namespace ookami {
namespace {

using npb::Benchmark;
using perf::a64fx;
using perf::app_time;
using perf::skylake_npb_node;
using toolchain::Toolchain;
using toolchain::policy;

double npb_time(Benchmark b, Toolchain tc, int threads, bool first_touch = false) {
  return app_time(a64fx(), npb::class_c_profile(b), policy(tc).app, threads, first_touch)
      .seconds;
}

double npb_time_skl(Benchmark b, int threads) {
  return app_time(skylake_npb_node(), npb::class_c_profile(b), policy(Toolchain::kIntel).app,
                  threads)
      .seconds;
}

// --- Figure 3: single-core, class C ------------------------------------------

TEST(Fig3, GccBestOrComparableExceptEp) {
  for (auto b : npb::all_benchmarks()) {
    const double gcc = npb_time(b, Toolchain::kGnu, 1);
    double best = gcc;
    for (auto tc : toolchain::a64fx_toolchains()) best = std::min(best, npb_time(b, tc, 1));
    if (b == Benchmark::kEP) {
      EXPECT_GT(gcc / best, 2.0) << "EP: gcc ~3x worse (no vector math)";
      EXPECT_LT(gcc / best, 4.5);
    } else {
      EXPECT_LE(gcc / best, 1.15) << npb::benchmark_name(b) << ": gcc best or comparable";
    }
  }
}

TEST(Fig3, IntelSkylakeWinsSingleCoreBy1p6To5p5) {
  // Known divergence: our model makes single-core SP roughly a tie
  // (A64FX's 35 GB/s single-core HBM stream offsets its weak scalar
  // core on a fully streaming kernel), where the paper's Fig. 3 shows
  // Intel ahead across all six apps.  EXPERIMENTS.md records this; SP
  // is excluded from the strict ordering assertion here.
  double worst_ratio = 0.0, best_ratio = 1e9;
  for (auto b : npb::all_benchmarks()) {
    if (b == Benchmark::kSP) continue;
    double best_a64fx = 1e300;
    for (auto tc : toolchain::a64fx_toolchains()) {
      best_a64fx = std::min(best_a64fx, npb_time(b, tc, 1));
    }
    const double ratio = best_a64fx / npb_time_skl(b, 1);
    EXPECT_GT(ratio, 1.0) << npb::benchmark_name(b);
    worst_ratio = std::max(worst_ratio, ratio);
    best_ratio = std::min(best_ratio, ratio);
  }
  EXPECT_NEAR(best_ratio, 1.6, 0.6);   // CG end of the paper's range
  EXPECT_NEAR(worst_ratio, 5.5, 2.0);  // EP end
}

TEST(Fig3, GapWidensWithComputeIntensity) {
  const double cg = npb_time(Benchmark::kCG, Toolchain::kGnu, 1) / npb_time_skl(Benchmark::kCG, 1);
  const double ep = npb_time(Benchmark::kEP, Toolchain::kFujitsu, 1) /
                    npb_time_skl(Benchmark::kEP, 1);
  EXPECT_LT(cg, ep);
}

// --- Figure 4: all cores -------------------------------------------------------

TEST(Fig4, A64fxWinsOnMemoryBoundAppsAtFullNode) {
  for (auto b : {Benchmark::kSP, Benchmark::kUA}) {
    const double a = npb_time(b, Toolchain::kGnu, 48);
    const double s = npb_time_skl(b, 36);
    EXPECT_LT(a, s) << npb::benchmark_name(b) << ": A64FX outperforms at full node";
  }
}

TEST(Fig4, SkylakeStillWinsComputeBoundButGapNarrows) {
  const double a1 = npb_time(Benchmark::kEP, Toolchain::kFujitsu, 1);
  const double s1 = npb_time_skl(Benchmark::kEP, 1);
  const double a48 = npb_time(Benchmark::kEP, Toolchain::kFujitsu, 48);
  const double s36 = npb_time_skl(Benchmark::kEP, 36);
  EXPECT_LT(s36, a48);                     // Skylake still ahead
  EXPECT_LT(a48 / s36, a1 / s1);           // but the gap narrowed
}

TEST(Fig4, FirstTouchFixesFujitsuOnSp) {
  const double default_placement = npb_time(Benchmark::kSP, Toolchain::kFujitsu, 48);
  const double first_touch = npb_time(Benchmark::kSP, Toolchain::kFujitsu, 48, true);
  EXPECT_GT(default_placement / first_touch, 1.5)
      << "CMG-0 placement must throttle memory-bound SP";
  // And first-touch never hurts any app.
  for (auto b : npb::all_benchmarks()) {
    EXPECT_LE(npb_time(b, Toolchain::kFujitsu, 48, true),
              npb_time(b, Toolchain::kFujitsu, 48) * 1.0001)
        << npb::benchmark_name(b);
  }
}

TEST(Fig4, ArmRuntimeOverheadShowsOnRegionHeavyApps) {
  // Paper: arm deviates on BT and UA at full node despite comparable
  // single-core performance.
  const double arm_ua = npb_time(Benchmark::kUA, Toolchain::kArm21, 48);
  const double gcc_ua = npb_time(Benchmark::kUA, Toolchain::kGnu, 48);
  EXPECT_GT(arm_ua / gcc_ua, 1.1);
}

// --- Figures 5/6: scaling -------------------------------------------------------

TEST(Fig5, A64fxEfficiencyOrdering) {
  const auto& gcc = policy(Toolchain::kGnu).app;
  const double ep = perf::parallel_efficiency(a64fx(), npb::class_c_profile(Benchmark::kEP), gcc, 48);
  const double sp = perf::parallel_efficiency(a64fx(), npb::class_c_profile(Benchmark::kSP), gcc, 48);
  EXPECT_GT(ep, 0.85);           // EP scales almost linearly
  EXPECT_NEAR(sp, 0.6, 0.15);    // SP has the least efficiency, ~0.6
  for (auto b : npb::all_benchmarks()) {
    const double eff = perf::parallel_efficiency(a64fx(), npb::class_c_profile(b), gcc, 48);
    EXPECT_GE(eff, sp * 0.95) << npb::benchmark_name(b) << ": SP is the worst scaler";
  }
}

TEST(Fig6, SkylakeScalesWorseThanA64fx) {
  const auto& gcc = policy(Toolchain::kGnu).app;
  const auto& icc = policy(Toolchain::kIntel).app;
  for (auto b : npb::all_benchmarks()) {
    const double a = perf::parallel_efficiency(a64fx(), npb::class_c_profile(b), gcc, 48);
    const double s = perf::parallel_efficiency(skylake_npb_node(), npb::class_c_profile(b), icc, 36);
    EXPECT_GT(a, s) << npb::benchmark_name(b) << ": Fig 5 vs Fig 6";
  }
  const double sp = perf::parallel_efficiency(skylake_npb_node(),
                                              npb::class_c_profile(Benchmark::kSP), icc, 36);
  const double ep = perf::parallel_efficiency(skylake_npb_node(),
                                              npb::class_c_profile(Benchmark::kEP), icc, 36);
  EXPECT_NEAR(sp, 0.25, 0.12);  // paper: 0.25
  EXPECT_NEAR(ep, 0.70, 0.2);   // paper: 0.70
}

// --- Table II: LULESH ------------------------------------------------------------

TEST(TableII, VectorizedVariantFasterEverywhere) {
  using lulesh::Variant;
  for (auto tc : toolchain::a64fx_toolchains()) {
    const double base = app_time(a64fx(), lulesh::table2_profile(Variant::kBase),
                                 policy(tc).app, 1)
                            .seconds;
    const double vect = app_time(a64fx(), lulesh::table2_profile(Variant::kVect),
                                 policy(tc).app, 1)
                            .seconds;
    EXPECT_LT(vect, base) << policy(tc).name;
    EXPECT_NEAR(base / vect, 2.05 / 1.45, 0.45);  // paper's typical st gain
  }
}

TEST(TableII, IntelSkylakeAbout5xFasterSingleThread) {
  using lulesh::Variant;
  const double a64 = app_time(a64fx(), lulesh::table2_profile(Variant::kBase),
                              policy(Toolchain::kGnu).app, 1)
                         .seconds;
  const double skl = app_time(perf::skylake_6130(), lulesh::table2_profile(Variant::kBase),
                              policy(Toolchain::kIntel).app, 1)
                         .seconds;
  EXPECT_NEAR(a64 / skl, 2.054 / 0.395, 2.0);
}

// --- report helpers ---------------------------------------------------------------

TEST(Report, ClaimCheckLogic) {
  report::ClaimCheck ok{"id", "desc", 2.0, 2.5, 1.5};
  EXPECT_TRUE(ok.pass());
  report::ClaimCheck bad{"id", "desc", 2.0, 4.0, 1.5};
  EXPECT_FALSE(bad.pass());
  EXPECT_EQ(report::failed({ok, bad}), 1);
  EXPECT_NE(report::render_claims("t", {ok, bad}).find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace ookami
