// Accuracy and edge-case tests for the extended vector math functions
// (exp2 / expm1 / log1p / tanh) built on the FEXPA core.

#include <gtest/gtest.h>

#include <cmath>

#include "ookami/vecmath/extra.hpp"
#include "ookami/vecmath/ulp.hpp"

namespace ookami::vecmath {
namespace {

using sve::Vec;

struct SweepCase {
  const char* name;
  double (*fn)(double);
  double (*ref)(double);
  double lo, hi;
  double max_ulp;
};

double exp2_1(double x) { return exp2(Vec(x))[0]; }
double expm1_1(double x) { return expm1(Vec(x))[0]; }
double log1p_1(double x) { return log1p(Vec(x))[0]; }
double tanh_1(double x) { return tanh(Vec(x))[0]; }

class ExtraSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ExtraSweep, UlpBound) {
  const auto& c = GetParam();
  const auto rep = ulp_sweep(c.fn, c.ref, c.lo, c.hi, 50000);
  EXPECT_LE(rep.max_ulp, c.max_ulp) << c.name << " worst at " << rep.worst_input;
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ExtraSweep,
    ::testing::Values(
        SweepCase{"exp2_wide", exp2_1, [](double x) { return std::exp2(x); }, -1020.0, 1020.0, 4.0},
        SweepCase{"exp2_narrow", exp2_1, [](double x) { return std::exp2(x); }, -2.0, 2.0, 2.0},
        SweepCase{"expm1_wide", expm1_1, [](double x) { return std::expm1(x); }, -30.0, 700.0, 4.0},
        SweepCase{"expm1_tiny", expm1_1, [](double x) { return std::expm1(x); }, -1e-8, 1e-8, 2.0},
        SweepCase{"log1p_wide", log1p_1, [](double x) { return std::log1p(x); }, -0.999, 1e6, 4.0},
        SweepCase{"log1p_tiny", log1p_1, [](double x) { return std::log1p(x); }, -1e-8, 1e-8, 2.0},
        SweepCase{"tanh_core", tanh_1, [](double x) { return std::tanh(x); }, -20.0, 20.0, 6.0},
        SweepCase{"tanh_tiny", tanh_1, [](double x) { return std::tanh(x); }, -1e-5, 1e-5, 2.0}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Exp2, ExactAtIntegers) {
  // The FEXPA path makes integer inputs exact: r = 0, q = 0.
  for (int k = -1000; k <= 1000; k += 37) {
    EXPECT_EQ(exp2_1(k), std::ldexp(1.0, k)) << k;
  }
}

TEST(Exp2, Edges) {
  EXPECT_EQ(exp2_1(2000.0), HUGE_VAL);
  EXPECT_EQ(exp2_1(-2000.0), 0.0);
  EXPECT_EQ(exp2_1(HUGE_VAL), HUGE_VAL);
  EXPECT_EQ(exp2_1(-HUGE_VAL), 0.0);
  EXPECT_TRUE(std::isnan(exp2_1(NAN)));
  EXPECT_EQ(exp2_1(0.0), 1.0);
}

TEST(Expm1, Edges) {
  EXPECT_EQ(expm1_1(0.0), 0.0);
  EXPECT_EQ(expm1_1(-0.0), -0.0);
  EXPECT_EQ(expm1_1(800.0), HUGE_VAL);
  EXPECT_EQ(expm1_1(-HUGE_VAL), -1.0);
  EXPECT_EQ(expm1_1(-100.0), -1.0);
  EXPECT_TRUE(std::isnan(expm1_1(NAN)));
}

TEST(Expm1, NoCancellationNearZero) {
  // exp(x)-1 computed naively loses all digits here; expm1 must not.
  const double x = 1e-12;
  EXPECT_LE(ulp_distance(expm1_1(x), std::expm1(x)), 2u);
  EXPECT_NEAR(expm1_1(x) / x, 1.0, 1e-10);
}

TEST(Log1p, Edges) {
  EXPECT_EQ(log1p_1(0.0), 0.0);
  EXPECT_EQ(log1p_1(-1.0), -HUGE_VAL);
  EXPECT_TRUE(std::isnan(log1p_1(-1.5)));
  EXPECT_TRUE(std::isnan(log1p_1(NAN)));
  EXPECT_EQ(log1p_1(HUGE_VAL), HUGE_VAL);
}

TEST(Log1p, InverseOfExpm1) {
  for (double x : {-0.9, -0.1, 1e-9, 0.3, 2.0, 40.0}) {
    EXPECT_LE(ulp_distance(log1p_1(expm1_1(x)), x), 8u) << x;
  }
}

TEST(Tanh, Edges) {
  EXPECT_EQ(tanh_1(0.0), 0.0);
  EXPECT_EQ(tanh_1(HUGE_VAL), 1.0);
  EXPECT_EQ(tanh_1(-HUGE_VAL), -1.0);
  EXPECT_EQ(tanh_1(100.0), 1.0);
  EXPECT_TRUE(std::isnan(tanh_1(NAN)));
  EXPECT_LT(tanh_1(-3.0), 0.0);
}

TEST(Tanh, OddFunction) {
  for (double x : {0.1, 1.0, 5.0, 18.0}) {
    EXPECT_EQ(tanh_1(-x), -tanh_1(x)) << x;
  }
}

TEST(ArrayDrivers, HandleTails) {
  const std::size_t n = 13;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.1 * static_cast<double>(i) - 0.5;
  exp2_array(x, y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_LE(ulp_distance(y[i], std::exp2(x[i])), 4u);
  tanh_array(x, y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_LE(ulp_distance(y[i], std::tanh(x[i])), 4u);
}

}  // namespace
}  // namespace ookami::vecmath
