// Unit tests for ookami::harness: the JSON emitter/parser, the Run
// repeat protocol and result document, and the bench_diff regression
// gate (including a full file round trip through the emitter).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "ookami/dispatch/registry.hpp"
#include "ookami/harness/diff.hpp"
#include "ookami/harness/harness.hpp"
#include "ookami/harness/json.hpp"
#include "ookami/harness/profile.hpp"
#include "ookami/metrics/metrics.hpp"
#include "ookami/simd/backend.hpp"

namespace ookami::harness {
namespace {

namespace dispatch = ookami::dispatch;
namespace simd = ookami::simd;

// --------------------------------------------------------------- JSON

TEST(Json, DumpParseRoundTrip) {
  json::Value doc = json::Value::object();
  doc.set("name", "bench");
  doc.set("pi", 3.25);
  doc.set("n", 42);
  doc.set("ok", true);
  doc.set("missing", json::Value());
  json::Value arr = json::Value::array();
  arr.push_back(1.0);
  arr.push_back("two");
  arr.push_back(false);
  doc.set("items", std::move(arr));

  for (int indent : {0, 2}) {
    const json::Value back = json::Value::parse(doc.dump(indent));
    EXPECT_EQ(back.at("name").as_string(), "bench");
    EXPECT_DOUBLE_EQ(back.at("pi").as_number(), 3.25);
    EXPECT_DOUBLE_EQ(back.at("n").as_number(), 42.0);
    EXPECT_TRUE(back.at("ok").as_bool());
    EXPECT_TRUE(back.at("missing").is_null());
    EXPECT_EQ(back.at("items").size(), 3u);
    EXPECT_EQ(back.at("items").at(1).as_string(), "two");
  }
}

TEST(Json, StringEscapes) {
  json::Value v = json::Value::object();
  v.set("s", "a\"b\\c\nd\te");
  const json::Value back = json::Value::parse(v.dump(0));
  EXPECT_EQ(back.at("s").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(json::Value::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  json::Value v = json::Value::object();
  v.set("nan", std::numeric_limits<double>::quiet_NaN());
  v.set("inf", std::numeric_limits<double>::infinity());
  const json::Value back = json::Value::parse(v.dump(0));
  EXPECT_TRUE(back.at("nan").is_null());
  EXPECT_TRUE(back.at("inf").is_null());
}

TEST(Json, ObjectPreservesInsertionOrderAndReplaces) {
  json::Value v = json::Value::object();
  v.set("b", 1);
  v.set("a", 2);
  v.set("b", 3);  // replace in place, no duplicate
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_DOUBLE_EQ(v.at("b").as_number(), 3.0);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(json::Value::parse(""), json::ParseError);
  EXPECT_THROW(json::Value::parse("{\"a\": 1,}"), json::ParseError);
  EXPECT_THROW(json::Value::parse("[1, 2] trailing"), json::ParseError);
  EXPECT_THROW(json::Value::parse("{\"a\" 1}"), json::ParseError);
  EXPECT_THROW(json::Value::parse("nul"), json::ParseError);
  EXPECT_THROW(json::Value::parse("1.2.3"), json::ParseError);
}

TEST(Json, ParsesNestedDocuments) {
  const auto v = json::Value::parse(R"({"a": {"b": [1, {"c": null}]}, "d": -1.5e2})");
  EXPECT_TRUE(v.at("a").at("b").at(1).at("c").is_null());
  EXPECT_DOUBLE_EQ(v.at("d").as_number(), -150.0);
  EXPECT_DOUBLE_EQ(v.number_or("nope", 7.0), 7.0);
  EXPECT_EQ(v.string_or("nope", "x"), "x");
}

// ------------------------------------------------------------ Options

TEST(Options, FromCliParsesHarnessFlags) {
  const char* argv[] = {"bench", "--repeats", "9", "--warmup=0", "--min-time", "0.5",
                        "--out-dir", "/tmp/x", "--no-csv", "--strict-claims"};
  const Cli cli(10, const_cast<char**>(argv));
  const Options o = Options::from_cli(cli);
  EXPECT_EQ(o.repeats, 9);
  EXPECT_EQ(o.warmup, 0);
  EXPECT_DOUBLE_EQ(o.min_time_s, 0.5);
  EXPECT_EQ(o.out_dir, "/tmp/x");
  EXPECT_TRUE(o.emit_json);
  EXPECT_FALSE(o.emit_csv);
  EXPECT_TRUE(o.strict_claims);
}

TEST(Options, MetricsFlagImpliesTraceAndParsesBackend) {
  {
    const char* argv[] = {"bench", "--metrics"};
    const Cli cli(2, const_cast<char**>(argv));
    const Options o = Options::from_cli(cli);
    EXPECT_TRUE(o.metrics);
    EXPECT_TRUE(o.trace);  // region attribution needs regions
    EXPECT_EQ(o.metrics_backend, "auto");
  }
  {
    const char* argv[] = {"bench", "--metrics", "--metrics-backend", "software"};
    const Cli cli(4, const_cast<char**>(argv));
    EXPECT_EQ(Options::from_cli(cli).metrics_backend, "software");
  }
  {
    ::setenv("OOKAMI_METRICS", "1", 1);
    const char* argv[] = {"bench"};
    const Cli cli(1, const_cast<char**>(argv));
    const Options o = Options::from_cli(cli);
    ::unsetenv("OOKAMI_METRICS");
    EXPECT_TRUE(o.metrics);
    EXPECT_TRUE(o.trace);
  }
  {
    const char* argv[] = {"bench"};
    const Cli cli(1, const_cast<char**>(argv));
    const Options o = Options::from_cli(cli);
    EXPECT_FALSE(o.metrics);
    EXPECT_FALSE(o.trace);
  }
}

// ---------------------------------------------------------------- Run

Options quiet_options() {
  Options o;
  o.repeats = 3;
  o.warmup = 1;
  o.emit_json = false;
  o.emit_csv = false;
  return o;
}

TEST(Run, TimedSeriesHonoursRepeatCount) {
  harness::Run run("unit", quiet_options());
  int calls = 0;
  const Summary& s = run.time("work", [&] { ++calls; });
  EXPECT_EQ(calls, 4);  // 1 warmup + 3 measured
  EXPECT_EQ(s.count(), 3u);
  EXPECT_GE(s.min(), 0.0);
  ASSERT_EQ(run.series().size(), 1u);
  EXPECT_EQ(run.series()[0].kind, "timed");
}

TEST(Run, MinTimeKeepsRepeatingUntilBudget) {
  Options o = quiet_options();
  o.repeats = 1;
  o.min_time_s = 0.02;
  o.warmup = 0;
  harness::Run run("unit", o);
  const Summary& s = run.time("spin", [] {
    volatile double x = 0.0;
    for (int i = 0; i < 200000; ++i) x = x + 1.0;
  });
  double total = 0.0;
  for (double v : s.samples()) total += v;
  EXPECT_GE(total, 0.02);
}

TEST(Run, DocumentShapeAndEmptySummaryNulls) {
  harness::Run run("unit", quiet_options());
  run.record("model/x", 2.5, "s");
  run.record("rate/y", 10.0, "GF/s", Direction::kHigherIsBetter);
  run.record_summary("never-ran", Summary{}, "s");
  run.note("class", "S");

  const json::Value doc = run.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "ookami-bench-1");
  EXPECT_EQ(doc.at("name").as_string(), "unit");
  EXPECT_EQ(doc.at("notes").at("class").as_string(), "S");
  EXPECT_FALSE(doc.at("environment").at("compiler").as_string().empty());
  EXPECT_FALSE(doc.at("environment").at("timestamp_utc").as_string().empty());

  const auto& series = doc.at("series");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series.at(1).at("better").as_string(), "higher");
  // The empty Summary must emit nulls, never a plausible 0.0.
  const auto& empty = series.at(2);
  EXPECT_DOUBLE_EQ(empty.at("count").as_number(), 0.0);
  EXPECT_TRUE(empty.at("median").is_null());
  EXPECT_TRUE(empty.at("min").is_null());
  EXPECT_TRUE(empty.at("max").is_null());
}

TEST(Run, RecordGroupedFlattensPopulatedCells) {
  GroupedSeries g("t", "app");
  g.set("EP", "gnu", 1.0);
  g.set("CG", "gnu", 2.0);
  g.set("EP", "fujitsu", 3.0);
  harness::Run run("unit", quiet_options());
  run.record_grouped(g, "s");
  ASSERT_EQ(run.series().size(), 3u);
  EXPECT_EQ(run.series()[0].name, "EP/gnu");
  EXPECT_EQ(run.series()[1].name, "EP/fujitsu");
  EXPECT_EQ(run.series()[2].name, "CG/gnu");
}

TEST(Run, CsvListsEverySeries) {
  harness::Run run("unit", quiet_options());
  run.record("a", 1.0, "s");
  run.record_summary("empty", Summary{}, "s");
  const std::string csv = run.to_csv();
  EXPECT_NE(csv.find("series,unit,kind,count"), std::string::npos);
  EXPECT_NE(csv.find("\na,s,recorded,1,"), std::string::npos);
  EXPECT_NE(csv.find("\nempty,s,timed,0,,"), std::string::npos);
}

TEST(Run, MetricsModeFeedsLatencyHistogramsAndMetricsBlock) {
  Options o = quiet_options();
  o.metrics = true;
  harness::Run run("unit", o);
  run.time("work", [] {
    volatile double x = 0.0;
    for (int i = 0; i < 1000; ++i) x = x + 1.0;
  });

  // Every measured repeat lands in a per-series latency histogram.
  const metrics::Histogram* h = run.metrics_registry().find_histogram("latency/work");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);  // repeats, warmup excluded
  EXPECT_GT(h->max(), 0.0);

  // The attached metrics document becomes the result's "metrics" block.
  const metrics::CounterSampler sampler(metrics::SamplerConfig{.allow_perf = false});
  const metrics::CounterSet totals = sampler.read();
  run.attach_metrics(metrics_to_json(sampler, totals, run.metrics_registry()));
  const json::Value doc = run.to_json();
  const json::Value* m = doc.find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->string_or("backend", ""), "software");
  ASSERT_NE(m->find("totals"), nullptr);
  const json::Value* hists = m->find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->size(), 1u);
  const auto& hj = hists->items()[0];
  EXPECT_EQ(hj.string_or("name", ""), "latency/work");
  EXPECT_DOUBLE_EQ(hj.number_or("count", 0.0), 3.0);
  EXPECT_TRUE(hj.contains("p50"));
  EXPECT_TRUE(hj.contains("p99"));
  ASSERT_NE(hj.find("buckets"), nullptr);
  EXPECT_GT(hj.find("buckets")->size(), 0u);

  // The environment block records that metrics were on.
  EXPECT_TRUE(doc.at("environment").at("metrics").as_bool());

  // The Prometheus artifact names the backend and the histogram.
  const std::string prom = metrics_to_prometheus(sampler, totals, run.metrics_registry());
  EXPECT_NE(prom.find("ookami_metrics_backend{backend=\"software\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("ookami_latency_work_count 3"), std::string::npos);
}

TEST(Run, MetricsOffKeepsRegistryAndJsonClean) {
  harness::Run run("unit", quiet_options());
  run.time("work", [] {});
  EXPECT_EQ(run.metrics_registry().find_histogram("latency/work"), nullptr);
  const json::Value doc = run.to_json();
  EXPECT_EQ(doc.find("metrics"), nullptr);
  EXPECT_FALSE(doc.at("environment").at("metrics").as_bool());
}

TEST(Environment, RecordsHarnessStartAnchor) {
  const std::string& start = harness_start_utc();
  // ISO-8601 UTC: "YYYY-MM-DDThh:mm:ssZ".
  ASSERT_EQ(start.size(), 20u);
  EXPECT_EQ(start[4], '-');
  EXPECT_EQ(start[10], 'T');
  EXPECT_EQ(start.back(), 'Z');
  EXPECT_EQ(harness_start_utc(), start);  // stable for the process
  EXPECT_GE(harness_uptime_s(), 0.0);

  const json::Value j = capture_environment().to_json();
  EXPECT_EQ(j.at("harness_start_utc").as_string(), start);
  EXPECT_TRUE(j.at("harness_duration_s").is_number());
}

// --------------------------------------------------------------- diff

json::Value make_doc(const std::string& name,
                     std::initializer_list<std::pair<const char*, double>> series,
                     const char* better = "lower") {
  json::Value doc = json::Value::object();
  doc.set("schema", "ookami-bench-1");
  doc.set("name", name);
  json::Value arr = json::Value::array();
  for (const auto& [sname, median] : series) {
    json::Value s = json::Value::object();
    s.set("name", sname);
    s.set("unit", "s");
    s.set("kind", "recorded");
    s.set("better", better);
    s.set("count", 1);
    s.set("median", median);
    s.set("mean", median);
    arr.push_back(std::move(s));
  }
  doc.set("series", std::move(arr));
  return doc;
}

TEST(Diff, DetectsMedianRegressionBeyondThreshold) {
  const auto before = make_doc("b", {{"k1", 1.0}, {"k2", 1.0}});
  const auto after = make_doc("b", {{"k1", 1.2}, {"k2", 1.05}});  // +20%, +5%
  DiffOptions opts;
  opts.threshold = 0.10;
  const DiffReport r = diff(before, after, opts);
  EXPECT_EQ(r.regressions, 1);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.deltas.size(), 2u);
  EXPECT_EQ(r.deltas[0].status, SeriesDelta::Status::kRegression);
  EXPECT_EQ(r.deltas[1].status, SeriesDelta::Status::kOk);
  EXPECT_NE(render_diff(r).find("REGRESSED"), std::string::npos);
}

TEST(Diff, HigherIsBetterFlipsTheGate) {
  const auto before = make_doc("b", {{"gf", 10.0}}, "higher");
  const auto faster = make_doc("b", {{"gf", 12.0}}, "higher");
  const auto slower = make_doc("b", {{"gf", 8.0}}, "higher");
  DiffOptions opts;
  opts.threshold = 0.10;
  EXPECT_EQ(diff(before, faster, opts).regressions, 0);
  EXPECT_EQ(diff(before, faster, opts).deltas[0].status, SeriesDelta::Status::kImprovement);
  EXPECT_EQ(diff(before, slower, opts).regressions, 1);
}

TEST(Diff, MissingAndNoDataSeries) {
  const auto before = make_doc("b", {{"gone", 1.0}, {"null-after", 1.0}});
  auto after = make_doc("b", {{"fresh", 1.0}});
  {
    json::Value s = json::Value::object();
    s.set("name", "null-after");
    s.set("unit", "s");
    s.set("better", "lower");
    s.set("count", 0);
    s.set("median", json::Value());
    json::Value arr = after.at("series");
    arr.push_back(std::move(s));
    after.set("series", std::move(arr));
  }
  DiffOptions opts;
  const DiffReport r = diff(before, after, opts);
  EXPECT_EQ(r.regressions, 0);  // neither missing nor no-data gates by default
  ASSERT_EQ(r.deltas.size(), 3u);
  EXPECT_EQ(r.deltas[0].status, SeriesDelta::Status::kMissingAfter);
  EXPECT_EQ(r.deltas[1].status, SeriesDelta::Status::kNoData);
  EXPECT_EQ(r.deltas[2].status, SeriesDelta::Status::kMissingBefore);
  EXPECT_EQ(r.added, 1);
  EXPECT_EQ(r.removed, 1);
  const std::string rendered = render_diff(r);
  EXPECT_NE(rendered.find("added"), std::string::npos);
  EXPECT_NE(rendered.find("REMOVED"), std::string::npos);
  EXPECT_NE(rendered.find("1 added (informational), 1 removed"), std::string::npos);

  opts.fail_on_missing = true;
  EXPECT_EQ(diff(before, after, opts).regressions, 1);
}

TEST(Diff, JsonModeEmitsMachineReadableDeltas) {
  const auto before = make_doc("base", {{"slow", 1.0}, {"gone", 2.0}});
  const auto after = make_doc("cand", {{"slow", 1.5}, {"fresh", 3.0}});
  DiffOptions opts;
  opts.threshold = 0.10;
  const DiffReport r = diff(before, after, opts);

  const json::Value doc = diff_to_json(r);
  EXPECT_EQ(doc.at("schema").as_string(), "ookami-diff-1");
  EXPECT_EQ(doc.at("before").as_string(), "base");
  EXPECT_EQ(doc.at("after").as_string(), "cand");
  EXPECT_EQ(doc.at("metric").as_string(), "median");
  EXPECT_DOUBLE_EQ(doc.at("threshold").as_number(), 0.10);
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("regressions").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("added").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("removed").as_number(), 1.0);

  const json::Value& deltas = doc.at("deltas");
  ASSERT_EQ(deltas.size(), 3u);
  auto find = [&](const std::string& name) -> const json::Value& {
    for (const auto& d : deltas.items()) {
      if (d.string_or("name", "") == name) return d;
    }
    static const json::Value null;
    return null;
  };
  const json::Value& slow = find("slow");
  EXPECT_EQ(slow.at("status").as_string(), "regressed");
  EXPECT_DOUBLE_EQ(slow.at("before").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(slow.at("after").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(slow.at("ratio").as_number(), 1.5);
  // Non-compared deltas carry nulls, never fabricated numbers.
  const json::Value& gone = find("gone");
  EXPECT_EQ(gone.at("status").as_string(), "removed");
  EXPECT_TRUE(gone.at("before").is_null());
  EXPECT_TRUE(gone.at("ratio").is_null());
  const json::Value& fresh = find("fresh");
  EXPECT_EQ(fresh.at("status").as_string(), "added");
  EXPECT_DOUBLE_EQ(fresh.at("after").as_number(), 3.0);

  // The document round-trips through the parser (what CI consumes).
  const json::Value back = json::Value::parse(doc.dump());
  EXPECT_EQ(back.at("deltas").size(), 3u);
}

TEST(Diff, BackendChangeWarnsButNeverGates) {
  // Same numbers, but one shared series changed its recorded backend:
  // the diff must surface that (text footer + JSON fields) while the
  // gate stays green — a backend move is a lead, not a regression.
  auto with_backends = [](json::Value doc,
                          std::initializer_list<std::pair<const char*, const char*>> backends) {
    json::Value arr = json::Value::array();
    std::size_t i = 0;
    for (const auto& s : doc.at("series").items()) {
      json::Value copy = s;
      copy.set("backend", std::string(std::data(backends)[i++].second));
      arr.push_back(std::move(copy));
    }
    doc.set("series", std::move(arr));
    return doc;
  };
  const auto before =
      with_backends(make_doc("b", {{"k1", 1.0}, {"k2", 1.0}}), {{"k1", "avx2"}, {"k2", "avx2"}});
  const auto after =
      with_backends(make_doc("b", {{"k1", 1.0}, {"k2", 1.0}}), {{"k1", "scalar"}, {"k2", "avx2"}});
  DiffOptions opts;
  const DiffReport r = diff(before, after, opts);
  EXPECT_TRUE(r.ok());  // warning only, never a gate failure
  EXPECT_EQ(r.backend_changes, 1);
  ASSERT_EQ(r.deltas.size(), 2u);
  EXPECT_TRUE(r.deltas[0].backend_changed);
  EXPECT_EQ(r.deltas[0].backend_before, "avx2");
  EXPECT_EQ(r.deltas[0].backend_after, "scalar");
  EXPECT_FALSE(r.deltas[1].backend_changed);

  const std::string rendered = render_diff(r);
  EXPECT_NE(rendered.find("WARNING: 1 series changed backend"), std::string::npos);
  EXPECT_NE(rendered.find("k1: avx2 -> scalar"), std::string::npos);

  const json::Value doc = diff_to_json(r);
  EXPECT_DOUBLE_EQ(doc.at("backend_changes").as_number(), 1.0);
  const json::Value& d0 = doc.at("deltas").at(0);
  EXPECT_TRUE(d0.at("backend_changed").as_bool());
  EXPECT_EQ(d0.at("backend_before").as_string(), "avx2");
  EXPECT_EQ(d0.at("backend_after").as_string(), "scalar");

  // Series without a recorded backend (or matching ones) never warn.
  const DiffReport clean = diff(before, before, opts);
  EXPECT_EQ(clean.backend_changes, 0);
  EXPECT_EQ(render_diff(clean).find("WARNING"), std::string::npos);
  const DiffReport no_field = diff(make_doc("b", {{"k1", 1.0}}), make_doc("b", {{"k1", 1.0}}), opts);
  EXPECT_EQ(no_field.backend_changes, 0);
}

TEST(Run, TimedSeriesArchivesObservedKernelBackends) {
  // A timed series brackets its body with the registry observation API;
  // kernels resolved inside the body land in kernel_backends and fold
  // into the series' backend label.
  using TestFn = int();
  static const dispatch::kernel_table<TestFn> table("test.harness.obs");
  harness::Run run("obs", quiet_options());
  {
    simd::ScopedBackend force(simd::Backend::kScalar);
    run.time("scalar-series", [&] { (void)table.resolve(); });
  }
  const json::Value doc = run.to_json();
  const json::Value& s = doc.at("series").at(0);
  EXPECT_EQ(s.at("backend").as_string(), "scalar");
  const json::Value& kb = s.at("kernel_backends");
  EXPECT_EQ(kb.at("test.harness.obs").as_string(), "scalar");
  // The ScopedBackend above is why the kernel resolved scalar; BENCH
  // consumers can read that straight from kernel_provenance.
  const json::Value& kp = s.at("kernel_provenance");
  EXPECT_EQ(kp.at("test.harness.obs").as_string(), "scoped");
}

TEST(Environment, CapturesRelevantRuntimeEnv) {
  ::setenv("OOKAMI_THREADS", "8", 1);
  ::setenv("OOKAMI_TRACE", "1", 1);  // recorded only; does not toggle tracing mid-run
  const Environment env = capture_environment();
  auto lookup = [&env](const std::string& key) -> const std::string* {
    for (const auto& kv : env.runtime_env) {
      if (kv.first == key) return &kv.second;
    }
    return nullptr;
  };
  ASSERT_NE(lookup("OOKAMI_THREADS"), nullptr);
  EXPECT_EQ(*lookup("OOKAMI_THREADS"), "8");
  ASSERT_NE(lookup("OOKAMI_TRACE"), nullptr);
  EXPECT_EQ(*lookup("OOKAMI_TRACE"), "1");

  const json::Value j = env.to_json();
  const json::Value* e = j.find("env");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->at("OOKAMI_THREADS").as_string(), "8");
  EXPECT_EQ(e->at("OOKAMI_TRACE").as_string(), "1");

  ::unsetenv("OOKAMI_THREADS");
  ::unsetenv("OOKAMI_TRACE");
  const Environment env2 = capture_environment();
  for (const auto& kv : env2.runtime_env) {
    EXPECT_NE(kv.first, "OOKAMI_THREADS");
    EXPECT_NE(kv.first, "OOKAMI_TRACE");
  }
}

TEST(Diff, RejectsForeignSchemaAndBadMetric) {
  json::Value doc = json::Value::object();
  doc.set("schema", "something-else");
  const auto good = make_doc("b", {{"k", 1.0}});
  EXPECT_THROW(diff(doc, good, DiffOptions{}), std::runtime_error);
  DiffOptions opts;
  opts.metric = "p99";
  EXPECT_THROW(diff(good, good, opts), std::runtime_error);
}

// Round trip: a Run emitted through finish() is readable by diff_files
// and an injected 20% median slowdown trips the gate.
TEST(Diff, FileRoundTripWithInjectedRegression) {
  const auto dir = std::filesystem::temp_directory_path() / "ookami_harness_test";
  std::filesystem::remove_all(dir);

  Options o;
  o.repeats = 2;
  o.out_dir = dir.string();
  o.emit_csv = true;
  harness::Run run("roundtrip", o);
  run.record("model/a", 10.0, "s");
  run.time("host/spin", [] {
    volatile double x = 0.0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  });
  EXPECT_EQ(run.finish(), 0);

  const std::string base = (dir / "BENCH_roundtrip.json").string();
  ASSERT_TRUE(std::filesystem::exists(base));
  ASSERT_TRUE(std::filesystem::exists(dir / "BENCH_roundtrip.csv"));

  // Re-emit with the recorded series 20% slower.
  json::Value doc;
  {
    std::ifstream in(base);
    std::ostringstream os;
    os << in.rdbuf();
    doc = json::Value::parse(os.str());
  }
  json::Value series = json::Value::array();
  for (const auto& s : doc.at("series").items()) {
    json::Value copy = s;
    if (copy.at("name").as_string() == "model/a") {
      copy.set("median", copy.at("median").as_number() * 1.2);
    }
    series.push_back(std::move(copy));
  }
  doc.set("series", std::move(series));
  const std::string cand = (dir / "BENCH_candidate.json").string();
  {
    std::ofstream out(cand);
    out << doc.dump();
  }

  DiffOptions opts;
  opts.threshold = 0.10;
  const DiffReport r = diff_files(base, cand, opts);
  EXPECT_EQ(r.regressions, 1);

  opts.threshold = 0.25;
  EXPECT_TRUE(diff_files(base, cand, opts).ok());

  EXPECT_THROW(diff_files(base, (dir / "nope.json").string(), opts), std::runtime_error);
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------- registry

TEST(Registry, MacroRegistrationIsVisible) {
  const auto names = registered_benches();
  bool found = false;
  for (const auto& n : names) found = found || n == "harness_selftest";
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ookami::harness

// Outside the anonymous namespace: exercise the registration macro the
// bench binaries use (the test main never invokes run_main, so the body
// is compiled but not executed).
OOKAMI_BENCH(harness_selftest) {
  run.record("noop", 1.0);
  return 0;
}
