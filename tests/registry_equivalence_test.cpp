// Registry-driven equivalence suite: every kernel registered in this
// binary must carry an equivalence check, and every registered native
// variant the CPU can run must agree with the scalar reference within
// the tolerance the module declared.  The test is module-agnostic — new
// kernels are covered the moment their registration lands, with no test
// edit — which is the point of hoisting dispatch into one registry.

#include <gtest/gtest.h>

#include <iostream>
#include <string>
#include <vector>

#include "ookami/dispatch/registry.hpp"
#include "ookami/hpcc/hpcc.hpp"
#include "ookami/loops/kernels.hpp"
#include "ookami/lulesh/lulesh.hpp"
#include "ookami/npb/cg.hpp"
#include "ookami/simd/backend.hpp"
#include "ookami/vecmath/vecmath.hpp"

// Same trick as tools/kernel_registry.cpp: kernels register from the
// module TU that declares their kernel_table, and referencing one symbol
// per TU pulls each archive member (with its registration anchors) into
// this test binary.  External linkage keeps the array's relocations
// alive.
extern const void* const kEquivalenceLinkAnchors[];
const void* const kEquivalenceLinkAnchors[] = {
    reinterpret_cast<const void*>(&ookami::loops::fig1_loop_kinds),   // loops/kernels.cpp
    reinterpret_cast<const void*>(&ookami::hpcc::dgemm),              // hpcc/dgemm.cpp
    reinterpret_cast<const void*>(&ookami::npb::spmv),                // npb/cg.cpp
    reinterpret_cast<const void*>(&ookami::lulesh::run_sedov),        // lulesh/lulesh.cpp
    reinterpret_cast<const void*>(&ookami::vecmath::exp_array),       // vecmath/exp.cpp
    reinterpret_cast<const void*>(&ookami::vecmath::log_array),       // vecmath/log_pow.cpp
    reinterpret_cast<const void*>(&ookami::vecmath::sin_array),       // vecmath/trig.cpp
    reinterpret_cast<const void*>(&ookami::vecmath::exp2_array),      // vecmath/extra.cpp
    reinterpret_cast<const void*>(&ookami::vecmath::recip_array),     // vecmath/recip_sqrt.cpp
};

namespace {

using ookami::simd::Backend;
namespace dispatch = ookami::dispatch;
namespace simd = ookami::simd;

// dispatch_test registers throwaway "test.*" kernels when both run in
// one ctest binary; here each test filters to the real module kernels.
bool module_kernel(const dispatch::KernelInfo& k) {
  return k.name.rfind("test.", 0) != 0;
}

TEST(RegistryManifest, CoversEveryDispatchSite) {
  // The five families whose ad-hoc backend tables the registry replaced.
  const char* expected[] = {
      "loops.fig1",   "hpcc.dgemm",  "npb.cg.spmv",  "lulesh.kinematics",
      "vecmath.exp",  "vecmath.log", "vecmath.pow",  "vecmath.sin",
      "vecmath.cos",  "vecmath.exp2", "vecmath.expm1", "vecmath.log1p",
      "vecmath.tanh", "vecmath.recip", "vecmath.sqrt",
  };
  const std::string m = dispatch::manifest();
  for (const char* name : expected) {
    EXPECT_NE(m.find(std::string(name) + "\t"), std::string::npos)
        << name << " missing from the registry manifest:\n" << m;
  }

  std::size_t count = 0;
  for (const dispatch::KernelInfo& k : dispatch::kernels()) {
    if (module_kernel(k)) ++count;
  }
  EXPECT_EQ(count, std::size(expected));
}

TEST(RegistryManifest, EveryKernelRegistersCompiledVariants) {
  for (const dispatch::KernelInfo& k : dispatch::kernels()) {
    if (!module_kernel(k)) continue;
    std::vector<Backend> want;
    if (simd::backend_compiled(Backend::kSse2)) want.push_back(Backend::kSse2);
    if (simd::backend_compiled(Backend::kAvx2)) want.push_back(Backend::kAvx2);
    if (simd::backend_compiled(Backend::kAvx512)) want.push_back(Backend::kAvx512);
    EXPECT_EQ(k.variants, want) << k.name << " registered an unexpected variant set";
  }
}

TEST(RegistryEquivalence, EveryKernelHasACheck) {
  for (const dispatch::KernelInfo& k : dispatch::kernels()) {
    if (!module_kernel(k)) continue;
    EXPECT_TRUE(k.has_check) << k.name << " has no registered equivalence check";
    EXPECT_GE(k.check_tolerance, 0.0) << k.name;
  }
}

TEST(RegistryEquivalence, EverySupportedVariantMatchesScalar) {
  int exercised = 0;
  for (const dispatch::KernelInfo& k : dispatch::kernels()) {
    if (!module_kernel(k) || !k.has_check) continue;
    double tol = 0.0;
    dispatch::CheckFn fn = dispatch::check(k.name, &tol);
    ASSERT_NE(fn, nullptr) << k.name;
    for (Backend b : k.variants) {
      if (!simd::backend_supported(b)) {
        // Registered-but-unsupported variants (e.g. an avx512 build on a
        // host without the ISA) are a visible gap in coverage, not a
        // silent one: say which pairs this run could not exercise.
        std::cout << "[ SKIPPED  ] " << k.name << " under " << simd::backend_name(b)
                  << ": compiled but not supported by this CPU\n";
        continue;
      }
      const double err = fn(b);
      EXPECT_LE(err, tol) << k.name << " under " << simd::backend_name(b)
                          << ": worst error " << err << " exceeds tolerance " << tol;
      ++exercised;
    }
  }
  if (simd::backend_supported(Backend::kSse2)) {
    EXPECT_GT(exercised, 0) << "no (kernel, variant) pair was exercised";
  }
}

}  // namespace
