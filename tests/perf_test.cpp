// Tests for the machine/loop/application performance models: Table III
// constants, model invariants, and the NUMA-placement mechanism.

#include <gtest/gtest.h>

#include "ookami/perf/app_model.hpp"
#include "ookami/perf/loop_model.hpp"
#include "ookami/perf/machine.hpp"
#include "ookami/perf/sync_model.hpp"

namespace ookami::perf {
namespace {

// --- Table III constants ---------------------------------------------------

TEST(MachineModel, TableIIIPeakGflopsPerCore) {
  EXPECT_DOUBLE_EQ(a64fx().peak_gflops_core(), 57.6);
  EXPECT_DOUBLE_EQ(skylake_8160().peak_gflops_core(), 44.8);
  EXPECT_DOUBLE_EQ(knl_7250().peak_gflops_core(), 44.8);
  EXPECT_DOUBLE_EQ(zen2_7742().peak_gflops_core(), 36.0);
}

TEST(MachineModel, TableIIIPeakGflopsPerNode) {
  EXPECT_NEAR(a64fx().peak_gflops_node(), 2765.0, 1.0);
  EXPECT_NEAR(skylake_8160().peak_gflops_node(), 2150.0, 1.0);
  EXPECT_NEAR(knl_7250().peak_gflops_node(), 3046.0, 1.0);
  EXPECT_NEAR(zen2_7742().peak_gflops_node(), 4608.0, 1.0);
}

TEST(MachineModel, OokamiTopology) {
  const auto& m = a64fx();
  EXPECT_EQ(m.cores, 48);
  EXPECT_EQ(m.numa.domains, 4);               // four CMGs
  EXPECT_EQ(m.numa.cores_per_domain, 12);
  EXPECT_DOUBLE_EQ(m.numa.local_bw_gbs, 256.0);  // HBM2 per CMG
  EXPECT_NEAR(m.numa.total_bw_gbs(), 1024.0, 1.0);
  EXPECT_DOUBLE_EQ(m.freq_ghz, 1.8);
  EXPECT_EQ(m.lanes(), 8);                    // 512-bit SVE
  EXPECT_DOUBLE_EQ(m.fsqrt_block_cyc, 134.0); // the manual's blocking latency
}

// --- Loop model invariants --------------------------------------------------

LoweredLoop basic_loop() {
  LoweredLoop l;
  l.vectorized = true;
  l.fp_per_elem = 0.5;
  l.int_per_elem = 0.4;
  l.working_set_bytes = 64 * 1024;
  l.cache_bytes_per_elem = 16;
  return l;
}

TEST(LoopModel, VectorizedBeatsScalar) {
  LoweredLoop vec = basic_loop();
  LoweredLoop scl = basic_loop();
  scl.vectorized = false;
  scl.fp_per_elem = vec.fp_per_elem * a64fx().lanes();
  EXPECT_LT(cycles_per_elem(a64fx(), vec), cycles_per_elem(a64fx(), scl));
}

TEST(LoopModel, BlockingSqrtDominates) {
  LoweredLoop newton = basic_loop();
  newton.fp_per_elem = 12.0 / 8;
  LoweredLoop blocking = basic_loop();
  blocking.sqrt_vec_per_elem = 1.0 / 8;
  const double cn = cycles_per_elem(a64fx(), newton);
  const double cb = cycles_per_elem(a64fx(), blocking);
  EXPECT_GT(cb, 5.0 * cn);  // the paper's order-of-magnitude gap
}

TEST(LoopModel, WindowedGatherFasterOnlyOnA64fx) {
  LoweredLoop g = basic_loop();
  g.fp_per_elem = 0.0;
  g.gather_per_elem = 1.0;
  LoweredLoop w = g;
  w.windowed_128 = true;
  EXPECT_LT(cycles_per_elem(a64fx(), w), cycles_per_elem(a64fx(), g));
  EXPECT_DOUBLE_EQ(cycles_per_elem(skylake_6140(), w), cycles_per_elem(skylake_6140(), g));
}

TEST(LoopModel, UnrollingHelps) {
  LoweredLoop l = basic_loop();
  l.fp_per_elem = 2.0;
  LoweredLoop u = l;
  u.unrolled = true;
  EXPECT_LT(cycles_per_elem(a64fx(), u), cycles_per_elem(a64fx(), l));
}

TEST(LoopModel, MemoryRooflineBinds) {
  LoweredLoop l = basic_loop();
  l.mem_bytes_per_elem = 64.0;  // streaming from DRAM
  const double c = cycles_per_elem(a64fx(), l);
  const double mem_cyc = 64.0 / (a64fx().core_mem_bw_gbs / a64fx().boost_ghz);
  EXPECT_GE(c, mem_cyc * 0.999);
}

TEST(LoopModel, SecondsScaleWithN) {
  const LoweredLoop l = basic_loop();
  EXPECT_NEAR(loop_seconds(a64fx(), l, 2000) / loop_seconds(a64fx(), l, 1000), 2.0, 1e-12);
}

// --- App model -------------------------------------------------------------

AppProfile memory_bound_app() {
  AppProfile p;
  p.name = "membound";
  p.flops = 1e11;
  p.dram_bytes = 1e12;
  p.vec_fraction = 0.7;
  p.parallel_regions = 1000;
  return p;
}

AppProfile compute_bound_app() {
  AppProfile p;
  p.name = "compute";
  p.flops = 1e12;
  p.dram_bytes = 1e9;
  p.vec_fraction = 0.8;
  p.parallel_regions = 10;
  return p;
}

CompilerEffects plain_compiler() {
  CompilerEffects c;
  c.name = "cc";
  return c;
}

class ThreadCountTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountTest, MoreThreadsNeverSlowerOnA64fx) {
  const int t = GetParam();
  const auto app = compute_bound_app();
  const auto cc = plain_compiler();
  const double t1 = app_time(a64fx(), app, cc, 1).seconds;
  const double tt = app_time(a64fx(), app, cc, t).seconds;
  EXPECT_LE(tt, t1 * 1.001);
  const double eff = parallel_efficiency(a64fx(), app, cc, t);
  EXPECT_GT(eff, 0.0);
  EXPECT_LE(eff, 1.35);  // boost-vs-base clock can push slightly over 1
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest, ::testing::Values(2, 6, 12, 24, 48));

TEST(AppModel, ComputeBoundScalesAlmostLinearlyOnA64fx) {
  // Fixed clock + negligible traffic => EP-like near-perfect scaling
  // (the paper's Fig. 5 EP curve).
  const double eff = parallel_efficiency(a64fx(), compute_bound_app(), plain_compiler(), 48);
  EXPECT_GT(eff, 0.9);
}

TEST(AppModel, MemoryBoundEfficiencyDropsTo0p6OnA64fx) {
  // SP-like: single core rides 35 GB/s; 48 cores share ~1 TB/s.
  const double eff = parallel_efficiency(a64fx(), memory_bound_app(), plain_compiler(), 48);
  EXPECT_GT(eff, 0.4);
  EXPECT_LT(eff, 0.75);  // the paper reports ~0.6
}

TEST(AppModel, SkylakeScalesWorseThanA64fxOnMemoryBound) {
  const double a = parallel_efficiency(a64fx(), memory_bound_app(), plain_compiler(), 48);
  const double s = parallel_efficiency(skylake_npb_node(), memory_bound_app(), plain_compiler(), 36);
  EXPECT_LT(s, a);  // Fig. 5 vs Fig. 6
}

TEST(AppModel, Cmg0PlacementHurtsMemoryBoundApps) {
  auto cc = plain_compiler();
  cc.placement_cmg0 = true;
  const auto app = memory_bound_app();
  const double bad = app_time(a64fx(), app, cc, 48).seconds;
  const double good = app_time(a64fx(), app, cc, 48, /*force_first_touch=*/true).seconds;
  EXPECT_GT(bad, 2.0 * good);  // one CMG's 256 GB/s vs ~1 TB/s
  // Within one CMG the default placement costs nothing.
  const double bad12 = app_time(a64fx(), app, cc, 12).seconds;
  const double good12 = app_time(a64fx(), app, cc, 12, true).seconds;
  EXPECT_NEAR(bad12, good12, 1e-12);
}

TEST(AppModel, OmpOverheadGrowsWithRegions) {
  auto app = compute_bound_app();
  auto cc = plain_compiler();
  const double base = app_time(a64fx(), app, cc, 48).seconds;
  app.parallel_regions = 1e6;
  const double heavy = app_time(a64fx(), app, cc, 48).seconds;
  EXPECT_GT(heavy, base);
}

TEST(AppModel, RandomAccessPenalizesA64fxSingleCoreMore) {
  auto app = memory_bound_app();
  app.random_access_fraction = 0.8;
  const auto cc = plain_compiler();
  // CG-like: A64FX single-core suffers from HBM latency more than SKL.
  const double a1 = app_time(a64fx(), app, cc, 1).seconds;
  const double s1 = app_time(skylake_6140(), app, cc, 1).seconds;
  EXPECT_GT(a1, 1.3 * s1);
}

// --- Fork/join synchronization models --------------------------------------

TEST(SyncModel, CondvarAnchoredToMachineForkJoin) {
  // The condvar model is calibrated so the full-node A64FX cost lands on
  // the machine's measured omp_fork_join_us.
  const auto& m = a64fx();
  EXPECT_NEAR(condvar_fork_join_s(m, 48) * 1e6, m.omp_fork_join_us, 0.35);
}

TEST(SyncModel, SingleThreadCostsNothing) {
  const auto& m = a64fx();
  EXPECT_EQ(condvar_fork_join_s(m, 1), 0.0);
  EXPECT_EQ(spin_fork_join_s(m, 1), 0.0);
  EXPECT_EQ(hierarchical_fork_join_s(m, 1), 0.0);
  EXPECT_EQ(hardware_barrier_s(m, 1), 0.0);
}

TEST(SyncModel, StrategyOrderingAtFullNode) {
  // The paper-relevant ordering on a 48-core A64FX: hardware barrier <<
  // hierarchical < spin < condvar.
  const auto& m = a64fx();
  const double condvar = condvar_fork_join_s(m, 48);
  const double spin = spin_fork_join_s(m, 48);
  const double hier = hierarchical_fork_join_s(m, 48);
  const double hwb = hardware_barrier_s(m, 48);
  EXPECT_LT(spin, condvar);
  EXPECT_LT(hier, spin);
  EXPECT_LT(hwb, hier);
  // RRZE A64FX_HWB scale: the hardware barrier is roughly an order of
  // magnitude under the runtime's sleeping barrier.
  EXPECT_GT(condvar / hwb, 8.0);
  EXPECT_GT(hier / hwb, 2.0);
}

TEST(SyncModel, CostsGrowWithThreads) {
  const auto& m = a64fx();
  EXPECT_GT(condvar_fork_join_s(m, 48), condvar_fork_join_s(m, 4));
  EXPECT_GT(spin_fork_join_s(m, 48), spin_fork_join_s(m, 4));
  EXPECT_GT(hierarchical_fork_join_s(m, 48), hierarchical_fork_join_s(m, 12));
}

TEST(SyncModel, HierarchicalGroupSizeDefaultsToCmg) {
  const auto& m = a64fx();
  EXPECT_DOUBLE_EQ(hierarchical_fork_join_s(m, 48),
                   hierarchical_fork_join_s(m, 48, m.numa.cores_per_domain));
  // A flat "hierarchy" (one 48-wide group) degenerates toward the spin
  // barrier's O(threads) serialized arrivals.
  EXPECT_GT(hierarchical_fork_join_s(m, 48, 48), hierarchical_fork_join_s(m, 48, 12));
}

TEST(SyncModel, SpeedupVsCondvarMatchesRatios) {
  const auto& m = a64fx();
  EXPECT_DOUBLE_EQ(modeled_speedup_vs_condvar(m, "spin", 48),
                   condvar_fork_join_s(m, 48) / spin_fork_join_s(m, 48));
  EXPECT_GT(modeled_speedup_vs_condvar(m, "hierarchical", 48), 1.0);
  EXPECT_GT(modeled_speedup_vs_condvar(m, "hardware", 48),
            modeled_speedup_vs_condvar(m, "hierarchical", 48));
  // Unknown strategies compare condvar to itself.
  EXPECT_DOUBLE_EQ(modeled_speedup_vs_condvar(m, "mystery", 48), 1.0);
}

}  // namespace
}  // namespace ookami::perf
