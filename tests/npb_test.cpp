// NPB reimplementation tests: the NPB LCG, EP/CG against the *official*
// verification values, solver convergence for BT/SP/LU, UA conservation,
// and thread-count invariance of every kernel.

#include <gtest/gtest.h>

#include <cmath>

#include "ookami/npb/cg.hpp"
#include "ookami/npb/ep.hpp"
#include "ookami/npb/npb.hpp"
#include "ookami/npb/randdp.hpp"

namespace ookami::npb {
namespace {

// --- randlc ------------------------------------------------------------------

TEST(Randlc, ProducesValuesInUnitInterval) {
  double x = kNpbSeed;
  for (int i = 0; i < 10000; ++i) {
    const double u = randlc(x, kNpbA);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Randlc, StateIsExact46BitInteger) {
  double x = kNpbSeed;
  for (int i = 0; i < 1000; ++i) {
    randlc(x, kNpbA);
    EXPECT_EQ(x, std::floor(x));
    EXPECT_LT(x, 0x1.0p46);
    EXPECT_GE(x, 0.0);
  }
}

TEST(Randlc, Ipow46MatchesRepeatedApplication) {
  // a^k mod 2^46 computed by skip-ahead equals k sequential steps.
  for (std::uint64_t k : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    double x = 1.0;
    for (std::uint64_t i = 0; i < k; ++i) randlc(x, kNpbA);
    EXPECT_EQ(ipow46(kNpbA, k), x) << "k=" << k;
  }
}

TEST(Randlc, SkipAheadPartitionsTheStream) {
  // Advancing the seed by a^n must land where n draws land.
  double x = kNpbSeed;
  for (int i = 0; i < 64; ++i) randlc(x, kNpbA);
  double y = kNpbSeed;
  const double an = ipow46(kNpbA, 64);
  randlc(y, an);
  EXPECT_EQ(x, y);
}

// --- EP ----------------------------------------------------------------------

TEST(Ep, ClassSMatchesOfficialVerification) {
  const Result r = run_ep(Class::kS, 2);
  EXPECT_TRUE(r.verified) << r.detail;
}

TEST(Ep, ThreadCountInvariance) {
  const EpOutput a = ep_kernel(20, 1);
  const EpOutput b = ep_kernel(20, 3);
  EXPECT_EQ(a.sx, b.sx);  // bitwise: the skip-ahead partition is exact
  EXPECT_EQ(a.sy, b.sy);
  for (int l = 0; l < 10; ++l) EXPECT_EQ(a.counts[l], b.counts[l]);
}

TEST(Ep, AcceptanceRateIsPiOver4) {
  const EpOutput out = ep_kernel(20, 2);
  const double pairs = std::pow(2.0, 20);
  EXPECT_NEAR(out.gc / pairs, M_PI / 4.0, 0.01);
}

TEST(Ep, AnnulusCountsDecay) {
  // Gaussian deviates concentrate near the origin: q[l] decreasing.
  const EpOutput out = ep_kernel(20, 2);
  for (int l = 1; l < 5; ++l) EXPECT_LT(out.counts[l], out.counts[l - 1]);
}

// --- CG ----------------------------------------------------------------------

TEST(Cg, ClassSMatchesOfficialZeta) {
  const Result r = run_cg(Class::kS, 2);
  EXPECT_TRUE(r.verified) << "zeta=" << r.check_value << " " << r.detail;
  EXPECT_NEAR(r.check_value, 8.5971775078648, 1e-9);
}

TEST(Cg, ThreadCountDoesNotChangeVerification) {
  const Result a = run_cg(Class::kS, 1);
  const Result b = run_cg(Class::kS, 4);
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);
  // Reduction order differs across thread counts; zeta agrees to ~1e-11.
  EXPECT_NEAR(a.check_value, b.check_value, 1e-9);
}

TEST(Cg, MakeaStructure) {
  const CgSpec spec = cg_spec(Class::kS);
  const CsrMatrix m = cg_makea(spec.na, spec.nonzer, spec.shift);
  EXPECT_EQ(m.n, spec.na);
  EXPECT_EQ(m.rowstr.size(), static_cast<std::size_t>(spec.na) + 1);
  EXPECT_EQ(m.rowstr.front(), 0);
  EXPECT_EQ(static_cast<std::size_t>(m.rowstr.back()), m.nnz());
  // Row offsets monotone; column indices sorted and in range per row.
  for (int r = 0; r < m.n; ++r) {
    EXPECT_LE(m.rowstr[static_cast<std::size_t>(r)], m.rowstr[static_cast<std::size_t>(r) + 1]);
    for (int k = m.rowstr[static_cast<std::size_t>(r)]; k < m.rowstr[static_cast<std::size_t>(r) + 1]; ++k) {
      EXPECT_GE(m.colidx[static_cast<std::size_t>(k)], 0);
      EXPECT_LT(m.colidx[static_cast<std::size_t>(k)], m.n);
      if (k > m.rowstr[static_cast<std::size_t>(r)]) {
        EXPECT_LT(m.colidx[static_cast<std::size_t>(k - 1)], m.colidx[static_cast<std::size_t>(k)]);
      }
    }
  }
  // Every row has a diagonal entry (the shifted identity guarantees it).
  for (int r = 0; r < m.n; ++r) {
    bool diag = false;
    for (int k = m.rowstr[static_cast<std::size_t>(r)]; k < m.rowstr[static_cast<std::size_t>(r) + 1]; ++k) {
      if (m.colidx[static_cast<std::size_t>(k)] == r) diag = true;
    }
    EXPECT_TRUE(diag) << "row " << r;
  }
}

// --- grid solvers (BT / SP / LU) ----------------------------------------------

class GridSolverTest : public ::testing::TestWithParam<Benchmark> {};

TEST_P(GridSolverTest, ClassSConvergesToManufacturedSolution) {
  const Result r = run(GetParam(), Class::kS, 2);
  EXPECT_TRUE(r.verified) << benchmark_name(GetParam()) << ": " << r.detail;
  EXPECT_GT(r.mops, 0.0);
}

TEST_P(GridSolverTest, ThreadCountInvariance) {
  // Line solves / hyperplane points are data-independent within a
  // parallel region, so results are bitwise thread-count independent.
  const Result a = run(GetParam(), Class::kS, 1);
  const Result b = run(GetParam(), Class::kS, 4);
  EXPECT_EQ(a.check_value, b.check_value) << benchmark_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Solvers, GridSolverTest,
                         ::testing::Values(Benchmark::kBT, Benchmark::kSP, Benchmark::kLU),
                         [](const auto& info) { return benchmark_name(info.param); });

// --- UA ------------------------------------------------------------------------

TEST(Ua, ConservesHeatExactly) {
  const Result r = run(Benchmark::kUA, Class::kS, 2);
  EXPECT_TRUE(r.verified) << r.detail;
}

TEST(Ua, DeterministicAcrossRuns) {
  const Result a = run(Benchmark::kUA, Class::kS, 1);
  const Result b = run(Benchmark::kUA, Class::kS, 1);
  EXPECT_EQ(a.check_value, b.check_value);
}

TEST(Ua, WClassRefinesDeeper) {
  const Result s = run(Benchmark::kUA, Class::kS, 2);
  const Result w = run(Benchmark::kUA, Class::kW, 2);
  EXPECT_TRUE(w.verified) << w.detail;
  EXPECT_TRUE(s.verified);
}

// --- profiles -------------------------------------------------------------------

TEST(Profiles, ClassCCharacteristics) {
  for (auto b : all_benchmarks()) {
    const auto p = class_c_profile(b);
    EXPECT_GT(p.flops, 0.0) << benchmark_name(b);
    EXPECT_GT(p.dram_bytes, 0.0);
    EXPECT_GE(p.vec_fraction, 0.0);
    EXPECT_LE(p.vec_fraction, 1.0);
    EXPECT_GE(p.serial_fraction, 0.0);
    EXPECT_LT(p.serial_fraction, 0.1);
  }
  // The paper's memory-bound set: CG, SP, UA have low flop/byte.
  auto intensity = [](Benchmark b) {
    const auto p = class_c_profile(b);
    return p.flops / p.dram_bytes;
  };
  EXPECT_LT(intensity(Benchmark::kCG), intensity(Benchmark::kBT));
  EXPECT_LT(intensity(Benchmark::kSP), intensity(Benchmark::kBT));
  EXPECT_LT(intensity(Benchmark::kUA), intensity(Benchmark::kLU));
  EXPECT_GT(intensity(Benchmark::kEP), intensity(Benchmark::kBT));
}

}  // namespace
}  // namespace ookami::npb
