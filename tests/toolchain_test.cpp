// Toolchain-model tests: the discrete codegen choices and the
// qualitative figure-level orderings the paper reports.

#include <gtest/gtest.h>

#include "ookami/toolchain/toolchain.hpp"

namespace ookami::toolchain {
namespace {

using loops::LoopKind;
using perf::a64fx;
using perf::skylake_6140;

double a64fx_time(LoopKind kind, Toolchain tc) {
  return kernel_cycles_per_elem(kind, tc, a64fx()) / a64fx().boost_ghz;
}

double skl_intel_time(LoopKind kind) {
  return kernel_cycles_per_elem(kind, Toolchain::kIntel, skylake_6140()) /
         skylake_6140().boost_ghz;
}

TEST(Policy, GnuHasNoVectorMathLibrary) {
  EXPECT_FALSE(policy(Toolchain::kGnu).has_vector_math);
  EXPECT_TRUE(policy(Toolchain::kFujitsu).has_vector_math);
  EXPECT_TRUE(policy(Toolchain::kCray).has_vector_math);
  EXPECT_TRUE(policy(Toolchain::kArm21).has_vector_math);
}

TEST(Policy, BlockingDivSqrtSelections) {
  // Paper: GNU and AMD pick FSQRT; Arm 20 picked FDIV for reciprocal.
  EXPECT_EQ(policy(Toolchain::kGnu).sqrt, DivSqrtCodegen::kBlockingInstr);
  EXPECT_EQ(policy(Toolchain::kAmd).sqrt, DivSqrtCodegen::kBlockingInstr);
  EXPECT_EQ(policy(Toolchain::kFujitsu).sqrt, DivSqrtCodegen::kNewton);
  EXPECT_EQ(policy(Toolchain::kCray).sqrt, DivSqrtCodegen::kNewton);
  EXPECT_EQ(policy(Toolchain::kArm20).recip, DivSqrtCodegen::kBlockingInstr);
  EXPECT_EQ(policy(Toolchain::kArm21).recip, DivSqrtCodegen::kNewton);
}

TEST(Policy, FujitsuDefaultsToCmg0Placement) {
  EXPECT_TRUE(policy(Toolchain::kFujitsu).app.placement_cmg0);
  EXPECT_FALSE(policy(Toolchain::kGnu).app.placement_cmg0);
}

TEST(Policy, TableIFlagsPresent) {
  for (auto tc : {Toolchain::kFujitsu, Toolchain::kCray, Toolchain::kArm21, Toolchain::kGnu,
                  Toolchain::kIntel}) {
    EXPECT_FALSE(policy(tc).flags.empty());
    EXPECT_FALSE(policy(tc).version.empty());
  }
}

TEST(Lowering, GnuMathLoopsStayScalar) {
  const auto spec = loops::kernel_spec(LoopKind::kExp);
  EXPECT_FALSE(lower(spec, policy(Toolchain::kGnu), a64fx()).vectorized);
  EXPECT_TRUE(lower(spec, policy(Toolchain::kFujitsu), a64fx()).vectorized);
  // Non-math loops vectorize under every toolchain.
  const auto simple = loops::kernel_spec(LoopKind::kSimple);
  for (auto tc : a64fx_toolchains()) {
    EXPECT_TRUE(lower(simple, policy(tc), a64fx()).vectorized);
  }
}

// --- Figure 1 orderings ------------------------------------------------------

TEST(Fig1, FujitsuFastestOnEveryLoop) {
  for (auto kind : loops::fig1_loop_kinds()) {
    const double fj = a64fx_time(kind, Toolchain::kFujitsu);
    for (auto tc : a64fx_toolchains()) {
      EXPECT_LE(fj, a64fx_time(kind, tc) * 1.0001) << loops::loop_name(kind);
    }
  }
}

TEST(Fig1, SimpleLoopNearClockRatio) {
  // Fujitsu 'simple' hovers at ~2x Skylake (the 3.2/1.8 clock ratio
  // plus a little); Arm/GNU are up to ~2x slower than Fujitsu.
  const double ratio = a64fx_time(LoopKind::kSimple, Toolchain::kFujitsu) /
                       skl_intel_time(LoopKind::kSimple);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
  const double arm = a64fx_time(LoopKind::kSimple, Toolchain::kArm21) /
                     a64fx_time(LoopKind::kSimple, Toolchain::kFujitsu);
  EXPECT_LT(arm, 2.2);
}

TEST(Fig1, PredicateIsThreeFoldSlower) {
  const double ratio = a64fx_time(LoopKind::kPredicate, Toolchain::kFujitsu) /
                       skl_intel_time(LoopKind::kPredicate);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 4.0);
}

TEST(Fig1, ShortGatherBenefitsFromPairFusion) {
  const double gather = a64fx_time(LoopKind::kGather, Toolchain::kFujitsu) /
                        skl_intel_time(LoopKind::kGather);
  const double short_gather = a64fx_time(LoopKind::kShortGather, Toolchain::kFujitsu) /
                              skl_intel_time(LoopKind::kShortGather);
  EXPECT_NEAR(gather, 2.0, 0.5);        // ~clock ratio
  EXPECT_NEAR(short_gather, 1.5, 0.4);  // paper: circa 1.5x
  EXPECT_LT(short_gather, gather);
}

// --- Figure 2 / Section IV orderings ----------------------------------------

TEST(Fig2, ExpCyclesPerElementMatchPaper) {
  // Paper §IV: GNU-serial ~32, Arm 6, Cray 4.2, Fujitsu 2.1 cycles/elem
  // on A64FX; Intel on Skylake 1.6.
  auto cyc = [](Toolchain tc) { return kernel_cycles_per_elem(LoopKind::kExp, tc, a64fx()); };
  EXPECT_NEAR(cyc(Toolchain::kFujitsu), 2.1, 0.4);
  EXPECT_NEAR(cyc(Toolchain::kCray), 4.2, 0.8);
  EXPECT_NEAR(cyc(Toolchain::kArm21), 6.0, 1.2);
  EXPECT_NEAR(cyc(Toolchain::kGnu), 32.0, 6.0);
  EXPECT_NEAR(kernel_cycles_per_elem(LoopKind::kExp, Toolchain::kIntel, skylake_6140()), 1.6,
              0.4);
}

TEST(Fig2, GnuMathLoopsRunFarSlower) {
  // Conclusion: "some kernels might run 30-times slower" under GNU.
  for (auto kind : {LoopKind::kExp, LoopKind::kSin}) {
    const double gnu = a64fx_time(kind, Toolchain::kGnu);
    const double fujitsu = a64fx_time(kind, Toolchain::kFujitsu);
    EXPECT_GT(gnu / fujitsu, 10.0) << loops::loop_name(kind);
  }
}

TEST(Fig2, BlockingSqrtIsOrderOfMagnitudeWorse) {
  const double gnu = a64fx_time(LoopKind::kSqrt, Toolchain::kGnu);
  const double fujitsu = a64fx_time(LoopKind::kSqrt, Toolchain::kFujitsu);
  EXPECT_GT(gnu / fujitsu, 5.0);
}

TEST(Fig2, AmdPowTenfoldSlowerThanFujitsu) {
  const double amd = a64fx_time(LoopKind::kPow, Toolchain::kAmd);
  const double fujitsu = a64fx_time(LoopKind::kPow, Toolchain::kFujitsu);
  EXPECT_NEAR(amd / fujitsu, 10.0, 4.0);
}

TEST(Fig2, CrayMathBetween1p5And2p5OfFujitsu) {
  for (auto kind : loops::fig2_loop_kinds()) {
    const double r =
        a64fx_time(kind, Toolchain::kCray) / a64fx_time(kind, Toolchain::kFujitsu);
    EXPECT_GT(r, 1.0) << loops::loop_name(kind);
    EXPECT_LT(r, 2.5) << loops::loop_name(kind);
  }
}

TEST(Fig2, Arm20ReciprocalRegression) {
  const double arm20 = a64fx_time(LoopKind::kRecip, Toolchain::kArm20);
  const double arm21 = a64fx_time(LoopKind::kRecip, Toolchain::kArm21);
  EXPECT_GT(arm20, 5.0 * arm21);
}

}  // namespace
}  // namespace ookami::toolchain
