// AVX2 instantiations of the shared simd check bodies.  This TU is
// compiled with -mavx2/-mfma (see ookami_add_avx2_kernel in
// tests/CMakeLists.txt) so the avx2 batch specializations exist here;
// simd_test.cpp only calls these after backend_supported(kAvx2).

#include "simd_test_checks.hpp"

#if defined(__AVX2__) && defined(__FMA__)

namespace ookami::simd::testing {

void avx2_batch_matches_scalar() { expect_batch_matches_scalar<arch::avx2>(); }
void avx2_whilelt_and_tail() { expect_whilelt_and_tail<arch::avx2>(); }
void avx2_gather_scatter_edges() { expect_gather_scatter_edges<arch::avx2>(); }
void avx2_fexpa_bit_identical() { expect_fexpa_bit_identical<arch::avx2>(); }
void avx2_estimates_bit_identical() { expect_estimates_bit_identical<arch::avx2>(); }

}  // namespace ookami::simd::testing

#endif
