// ULP-bounded equivalence of every vecmath array entry point across the
// compiled SIMD backends.  The scalar backend (the original sve-emulation
// code path) is the reference; each native backend is forced via
// ScopedBackend and compared lane-by-lane on a sweep of random inputs
// plus the special-value corners (NaN/inf/zero/subnormal), where results
// must agree bit-for-bit.
//
// Documented bounds (the kernels are ports of the same algorithm onto
// the same op set, so in practice they agree bit-exactly; the bounds
// below are the contract, not the observation):
//   exp/log:            <= 2 ULP
//   sin/cos:            <= 2 ULP  (same Cody-Waite reduction + polynomials)
//   exp2/expm1/log1p:   <= 2 ULP
//   tanh:               <= 4 ULP  (composes expm1)
//   pow:                <= 16 ULP (composes exp(y log x))
//   recip/sqrt Newton:  <= 2 ULP

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "ookami/common/rng.hpp"
#include "ookami/simd/backend.hpp"
#include "ookami/vecmath/vecmath.hpp"

namespace ookami::vecmath {
namespace {

using simd::Backend;
using simd::ScopedBackend;

std::vector<Backend> native_backends() {
  std::vector<Backend> v;
  for (Backend b : {Backend::kSse2, Backend::kAvx2}) {
    if (simd::backend_compiled(b) && simd::backend_supported(b)) v.push_back(b);
  }
  return v;
}

/// Random sweep over [lo, hi) with the special corners appended.
std::vector<double> sweep(double lo, double hi, bool with_specials = true) {
  std::vector<double> x(1024);
  Xoshiro256 rng(31);
  fill_uniform({x.data(), x.size()}, lo, hi, rng);
  if (with_specials) {
    const double inf = std::numeric_limits<double>::infinity();
    for (double s : {0.0, -0.0, inf, -inf, std::numeric_limits<double>::quiet_NaN(),
                     4.9406564584124654e-324, -4.9406564584124654e-324,
                     std::numeric_limits<double>::min(), -std::numeric_limits<double>::min(),
                     1.0, -1.0}) {
      x.push_back(s);
    }
  }
  return x;
}

bool same_bits(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

/// Run `fn` under the scalar backend and under `b`, compare outputs:
/// finite pairs within `bound` ULP, non-finite/zero lanes bit-identical.
template <class Fn>
void expect_equivalent(const std::vector<double>& x, Backend b, double bound, Fn&& fn,
                       const char* what) {
  std::vector<double> ref(x.size()), got(x.size());
  {
    ScopedBackend force(Backend::kScalar);
    fn(x, ref);
  }
  {
    ScopedBackend force(b);
    ASSERT_EQ(force.effective(), b);
    fn(x, got);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isfinite(ref[i]) && std::isfinite(got[i]) && ref[i] != 0.0) {
      EXPECT_LE(static_cast<double>(ulp_distance(ref[i], got[i])), bound)
          << what << "(" << x[i] << ") on " << simd::backend_name(b) << ": ref=" << ref[i]
          << " got=" << got[i];
    } else if (std::isnan(ref[i])) {
      // NaN results need only agree as NaN: the sign/payload of the
      // default QNaN differs between libm and the hardware instructions
      // (e.g. sqrtpd(-1) vs std::sqrt(-1)).
      EXPECT_TRUE(std::isnan(got[i]))
          << what << "(" << x[i] << ") on " << simd::backend_name(b) << ": got=" << got[i];
    } else {
      // Infinities and signed zeros must match bit-for-bit.
      EXPECT_TRUE(same_bits(ref[i], got[i]))
          << what << "(" << x[i] << ") on " << simd::backend_name(b) << ": ref=" << ref[i]
          << " got=" << got[i];
    }
  }
}

class VecmathBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (native_backends().empty()) GTEST_SKIP() << "no native SIMD backend compiled/supported";
  }
};

TEST_F(VecmathBackendTest, Exp) {
  const auto x = sweep(-750.0, 750.0);
  for (Backend b : native_backends()) {
    for (LoopShape shape : {LoopShape::kVla, LoopShape::kFixed, LoopShape::kUnrolled2}) {
      expect_equivalent(x, b, 2.0, [&](const auto& in, auto& out) {
        exp_array({in.data(), in.size()}, {out.data(), out.size()}, shape);
      }, "exp");
    }
  }
}

TEST_F(VecmathBackendTest, ExpPolySchemes) {
  const auto x = sweep(-30.0, 30.0, false);
  for (Backend b : native_backends()) {
    for (PolyScheme scheme : {PolyScheme::kHorner, PolyScheme::kEstrin}) {
      expect_equivalent(x, b, 2.0, [&](const auto& in, auto& out) {
        exp_array({in.data(), in.size()}, {out.data(), out.size()}, LoopShape::kVla, scheme);
      }, "exp-poly");
    }
  }
}

TEST_F(VecmathBackendTest, Log) {
  const auto x = sweep(1e-320, 1e300);
  for (Backend b : native_backends()) {
    expect_equivalent(x, b, 2.0, [](const auto& in, auto& out) {
      log_array({in.data(), in.size()}, {out.data(), out.size()});
    }, "log");
  }
}

TEST_F(VecmathBackendTest, SinCos) {
  const auto x = sweep(-100.0, 100.0);
  for (Backend b : native_backends()) {
    expect_equivalent(x, b, 2.0, [](const auto& in, auto& out) {
      sin_array({in.data(), in.size()}, {out.data(), out.size()});
    }, "sin");
    expect_equivalent(x, b, 2.0, [](const auto& in, auto& out) {
      cos_array({in.data(), in.size()}, {out.data(), out.size()});
    }, "cos");
  }
}

TEST_F(VecmathBackendTest, Exp2Expm1Log1pTanh) {
  for (Backend b : native_backends()) {
    expect_equivalent(sweep(-1080.0, 1080.0), b, 2.0, [](const auto& in, auto& out) {
      exp2_array({in.data(), in.size()}, {out.data(), out.size()});
    }, "exp2");
    expect_equivalent(sweep(-40.0, 720.0), b, 2.0, [](const auto& in, auto& out) {
      expm1_array({in.data(), in.size()}, {out.data(), out.size()});
    }, "expm1");
    expect_equivalent(sweep(-0.9999, 1e6), b, 2.0, [](const auto& in, auto& out) {
      log1p_array({in.data(), in.size()}, {out.data(), out.size()});
    }, "log1p");
    expect_equivalent(sweep(-25.0, 25.0), b, 4.0, [](const auto& in, auto& out) {
      tanh_array({in.data(), in.size()}, {out.data(), out.size()});
    }, "tanh");
  }
}

TEST_F(VecmathBackendTest, Pow) {
  // Mixed bases (positive, negative with integer/non-integer exponents,
  // zero) against a fixed exponent sweep.
  const auto x = sweep(-50.0, 50.0);
  std::vector<double> y(x.size());
  Xoshiro256 rng(41);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = i % 3 == 0 ? std::floor(rng.uniform(-8.0, 8.0)) : rng.uniform(-8.0, 8.0);
  }
  for (Backend b : native_backends()) {
    std::vector<double> ref(x.size()), got(x.size());
    {
      ScopedBackend force(Backend::kScalar);
      pow_array({x.data(), x.size()}, {y.data(), y.size()}, {ref.data(), ref.size()});
    }
    {
      ScopedBackend force(b);
      pow_array({x.data(), x.size()}, {y.data(), y.size()}, {got.data(), got.size()});
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (std::isfinite(ref[i]) && std::isfinite(got[i]) && ref[i] != 0.0) {
        EXPECT_LE(static_cast<double>(ulp_distance(ref[i], got[i])), 16.0)
            << "pow(" << x[i] << ", " << y[i] << ") on " << simd::backend_name(b);
      } else if (std::isnan(ref[i])) {
        EXPECT_TRUE(std::isnan(got[i]))
            << "pow(" << x[i] << ", " << y[i] << ") on " << simd::backend_name(b);
      } else {
        EXPECT_TRUE(same_bits(ref[i], got[i]))
            << "pow(" << x[i] << ", " << y[i] << ") on " << simd::backend_name(b)
            << ": ref=" << ref[i] << " got=" << got[i];
      }
    }
  }
}

TEST_F(VecmathBackendTest, RecipSqrt) {
  const auto x = sweep(1e-300, 1e300);
  for (Backend b : native_backends()) {
    for (DivSqrtStrategy s : {DivSqrtStrategy::kNewton, DivSqrtStrategy::kBlocking}) {
      expect_equivalent(x, b, 2.0, [&](const auto& in, auto& out) {
        recip_array({in.data(), in.size()}, {out.data(), out.size()}, s);
      }, "recip");
      expect_equivalent(x, b, 2.0, [&](const auto& in, auto& out) {
        sqrt_array({in.data(), in.size()}, {out.data(), out.size()}, s);
      }, "sqrt");
    }
  }
}

TEST_F(VecmathBackendTest, OddSizesExerciseTailPredicates) {
  for (Backend b : native_backends()) {
    for (std::size_t n : {1ul, 7ul, 8ul, 9ul, 17ul, 63ul}) {
      std::vector<double> x(n);
      Xoshiro256 rng(n);
      fill_uniform({x.data(), n}, -20.0, 20.0, rng);
      std::vector<double> ref(n), got(n);
      {
        ScopedBackend force(Backend::kScalar);
        exp_array({x.data(), n}, {ref.data(), n});
      }
      {
        ScopedBackend force(b);
        exp_array({x.data(), n}, {got.data(), n});
      }
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_LE(static_cast<double>(ulp_distance(ref[i], got[i])), 2.0)
            << "exp n=" << n << " i=" << i << " on " << simd::backend_name(b);
      }
    }
  }
}

}  // namespace
}  // namespace ookami::vecmath
