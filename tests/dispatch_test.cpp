// Kernel-registry dispatch layer (src/dispatch): override parsing, glob
// precedence, per-kernel resolution with clamping, and the heterogeneous
// per-kernel override path that lets two kernels run different backends
// in one process.
//
// The tests register their own throwaway kernels (names under "test.*")
// so they exercise the registry machinery without depending on which
// modules happen to be linked in.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "ookami/dispatch/autotune.hpp"
#include "ookami/dispatch/override.hpp"
#include "ookami/dispatch/registry.hpp"
#include "ookami/simd/backend.hpp"

namespace ookami::dispatch {
namespace {

using simd::Backend;

// --- override.hpp: glob matching ----------------------------------------

TEST(GlobMatch, Basics) {
  EXPECT_TRUE(glob_match("vecmath.exp", "vecmath.exp"));
  EXPECT_FALSE(glob_match("vecmath.exp", "vecmath.exp2"));
  EXPECT_TRUE(glob_match("vecmath.*", "vecmath.exp"));
  EXPECT_TRUE(glob_match("vecmath.*", "vecmath."));
  EXPECT_FALSE(glob_match("vecmath.*", "npb.cg.spmv"));
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*.spmv", "npb.cg.spmv"));
  EXPECT_TRUE(glob_match("npb.*.spmv", "npb.cg.spmv"));
  EXPECT_FALSE(glob_match("npb.*.spmv", "npb.cg.transpose"));
  EXPECT_TRUE(glob_match("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(glob_match("a*b*c", "a-x-c"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
}

// --- override.hpp: parsing ----------------------------------------------

TEST(ParseOverrides, WellFormedSpec) {
  std::vector<std::string> errors;
  const OverrideSet set = parse_overrides("hpcc.dgemm=sse2, vecmath.*=scalar", &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(set.rules.size(), 2u);
  EXPECT_EQ(set.rules[0].pattern, "hpcc.dgemm");
  EXPECT_EQ(set.rules[0].backend, Backend::kSse2);
  EXPECT_FALSE(set.rules[0].is_glob);
  EXPECT_EQ(set.rules[1].pattern, "vecmath.*");
  EXPECT_EQ(set.rules[1].backend, Backend::kScalar);
  EXPECT_TRUE(set.rules[1].is_glob);
  EXPECT_EQ(set.rules[1].specificity, 8);  // "vecmath." literal characters
}

TEST(ParseOverrides, MalformedEntriesAreSkippedNotFatal) {
  std::vector<std::string> errors;
  // Four malformed entries (missing '=', empty pattern, empty backend,
  // unknown backend) around one valid rule.
  const OverrideSet set =
      parse_overrides("foo, =avx2, hpcc.dgemm=, loops.fig1=neon, vecmath.exp=avx2", &errors);
  ASSERT_EQ(set.rules.size(), 1u);
  EXPECT_EQ(set.rules[0].pattern, "vecmath.exp");
  EXPECT_EQ(set.rules[0].backend, Backend::kAvx2);
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_NE(errors[0].find("missing '='"), std::string::npos);
  EXPECT_NE(errors[1].find("empty kernel pattern"), std::string::npos);
  EXPECT_NE(errors[2].find("empty backend name"), std::string::npos);
  EXPECT_NE(errors[3].find("unknown backend"), std::string::npos);
}

TEST(ParseOverrides, EmptyAndWhitespaceSpecs) {
  std::vector<std::string> errors;
  EXPECT_TRUE(parse_overrides("", &errors).empty());
  EXPECT_TRUE(parse_overrides(" , ,, ", &errors).empty());
  EXPECT_TRUE(errors.empty());
  // Whitespace around tokens is trimmed.
  const OverrideSet set = parse_overrides("  vecmath.exp = sse2  ", &errors);
  ASSERT_EQ(set.rules.size(), 1u);
  EXPECT_EQ(set.rules[0].pattern, "vecmath.exp");
  EXPECT_EQ(set.rules[0].backend, Backend::kSse2);
}

// --- override.hpp: lookup precedence ------------------------------------

TEST(OverrideLookup, ExactBeatsGlobRegardlessOfOrder) {
  Backend out = Backend::kAvx2;
  // Exact first, glob second.
  OverrideSet set = parse_overrides("vecmath.exp=avx2, vecmath.*=scalar");
  ASSERT_TRUE(set.lookup("vecmath.exp", out));
  EXPECT_EQ(out, Backend::kAvx2);
  ASSERT_TRUE(set.lookup("vecmath.log", out));
  EXPECT_EQ(out, Backend::kScalar);
  // Glob first, exact second.
  set = parse_overrides("vecmath.*=scalar, vecmath.exp=avx2");
  ASSERT_TRUE(set.lookup("vecmath.exp", out));
  EXPECT_EQ(out, Backend::kAvx2);
}

TEST(OverrideLookup, MoreSpecificGlobWins) {
  Backend out = Backend::kScalar;
  const OverrideSet set = parse_overrides("*=scalar, vecmath.*=sse2, vecmath.exp*=avx2");
  ASSERT_TRUE(set.lookup("vecmath.exp", out));
  EXPECT_EQ(out, Backend::kAvx2);  // "vecmath.exp*": most literal characters
  ASSERT_TRUE(set.lookup("vecmath.log", out));
  EXPECT_EQ(out, Backend::kSse2);
  ASSERT_TRUE(set.lookup("npb.cg.spmv", out));
  EXPECT_EQ(out, Backend::kScalar);
}

TEST(OverrideLookup, LaterRuleWinsTies) {
  Backend out = Backend::kScalar;
  OverrideSet set = parse_overrides("vecmath.exp=sse2, vecmath.exp=avx2");
  ASSERT_TRUE(set.lookup("vecmath.exp", out));
  EXPECT_EQ(out, Backend::kAvx2);  // appending refines an existing spec
  set = parse_overrides("vecmath.exp=avx2, vecmath.exp=sse2");
  ASSERT_TRUE(set.lookup("vecmath.exp", out));
  EXPECT_EQ(out, Backend::kSse2);
}

TEST(OverrideLookup, NoMatch) {
  Backend out = Backend::kAvx2;
  const OverrideSet set = parse_overrides("vecmath.*=scalar");
  EXPECT_FALSE(set.lookup("npb.cg.spmv", out));
  EXPECT_EQ(out, Backend::kAvx2);  // untouched
  EXPECT_FALSE(OverrideSet{}.lookup("anything", out));
}

// --- registry.hpp: resolution with throwaway kernels ---------------------

// Distinct tag results so the tests can tell which variant resolved.
using TagFn = int();
int tag_alpha_sse2() { return 102; }
int tag_alpha_avx2() { return 103; }
int tag_beta_sse2() { return 202; }

bool sse2_ready() {
  return simd::backend_compiled(Backend::kSse2) && simd::backend_supported(Backend::kSse2);
}
bool avx2_ready() {
  return simd::backend_compiled(Backend::kAvx2) && simd::backend_supported(Backend::kAvx2);
}

/// Registers the throwaway kernels exactly once per process:
///   test.alpha: sse2 + avx2 variants and an equivalence check
///   test.beta:  sse2 only
///   test.gamma: declared (call site exists) but no native variant
double alpha_check(Backend) { return 0.25; }

const kernel_table<TagFn>& alpha_table() {
  static const kernel_table<TagFn> t("test.alpha");
  static const variant_registrar<TagFn> sse2("test.alpha", Backend::kSse2, &tag_alpha_sse2);
  static const variant_registrar<TagFn> avx2("test.alpha", Backend::kAvx2, &tag_alpha_avx2);
  static const check_registrar chk("test.alpha", &alpha_check, 0.5);
  return t;
}

const kernel_table<TagFn>& beta_table() {
  static const kernel_table<TagFn> t("test.beta");
  static const variant_registrar<TagFn> sse2("test.beta", Backend::kSse2, &tag_beta_sse2);
  return t;
}

const kernel_table<TagFn>& gamma_table() {
  static const kernel_table<TagFn> t("test.gamma");
  return t;
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alpha_table();
    beta_table();
    gamma_table();
    set_overrides_for_testing({});  // no per-kernel rules unless a test sets them
  }
  void TearDown() override { set_overrides_for_testing({}); }
};

TEST_F(RegistryTest, ScalarResolutionReturnsNull) {
  simd::ScopedBackend force(Backend::kScalar);
  Backend used = Backend::kAvx2;
  EXPECT_EQ(alpha_table().resolve(used), nullptr);
  EXPECT_EQ(used, Backend::kScalar);
  EXPECT_EQ(gamma_table().resolve(), nullptr);
}

TEST_F(RegistryTest, ResolvesForcedBackend) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  simd::ScopedBackend force(Backend::kSse2);
  Backend used = Backend::kScalar;
  TagFn* fn = alpha_table().resolve(used);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(), 102);
  EXPECT_EQ(used, Backend::kSse2);
}

TEST_F(RegistryTest, WalksDownToBestRegisteredVariant) {
  if (!avx2_ready()) GTEST_SKIP() << "avx2 backend not compiled/supported";
  // test.beta has no avx2 variant: an avx2 request walks down to sse2.
  simd::ScopedBackend force(Backend::kAvx2);
  Backend used = Backend::kScalar;
  TagFn* fn = beta_table().resolve(used);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(), 202);
  EXPECT_EQ(used, Backend::kSse2);
}

TEST_F(RegistryTest, PerKernelOverrideSelectsBackend) {
  if (!sse2_ready() || !avx2_ready()) GTEST_SKIP() << "need both native backends";
  set_overrides_for_testing(parse_overrides("test.alpha=sse2"));
  Backend used = Backend::kScalar;
  TagFn* fn = alpha_table().resolve(used);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(), 102);  // sse2 although avx2 is available
  EXPECT_EQ(used, Backend::kSse2);
  EXPECT_EQ(resolved_backend("test.alpha"), Backend::kSse2);
}

TEST_F(RegistryTest, HeterogeneousDispatchInOneProcess) {
  if (!sse2_ready() || !avx2_ready()) GTEST_SKIP() << "need both native backends";
  // One process, three kernels, three different backends.
  set_overrides_for_testing(parse_overrides("test.*=avx2, test.beta=sse2, test.gamma=scalar"));
  Backend used_a = Backend::kScalar, used_b = Backend::kScalar;
  TagFn* a = alpha_table().resolve(used_a);
  TagFn* b = beta_table().resolve(used_b);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a(), 103);  // avx2 via the glob
  EXPECT_EQ(b(), 202);  // sse2 via the exact rule
  EXPECT_EQ(used_a, Backend::kAvx2);
  EXPECT_EQ(used_b, Backend::kSse2);
  EXPECT_EQ(gamma_table().resolve(), nullptr);  // forced scalar
}

TEST_F(RegistryTest, OverrideForScalarBeatsGlobalBackend) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  set_overrides_for_testing(parse_overrides("test.alpha=scalar"));
  // No ScopedBackend: the global backend is native, the rule says scalar.
  EXPECT_EQ(alpha_table().resolve(), nullptr);
  EXPECT_EQ(resolved_backend("test.alpha"), Backend::kScalar);
}

TEST_F(RegistryTest, ScopedBackendOutranksPerKernelRule) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  set_overrides_for_testing(parse_overrides("test.alpha=sse2"));
  simd::ScopedBackend force(Backend::kScalar);
  EXPECT_EQ(alpha_table().resolve(), nullptr);  // the test override wins
}

TEST_F(RegistryTest, OverrideClampsToSupportedVariant) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  // Request avx2 for a kernel that only registered sse2: walk down, do
  // not fail — the clamping philosophy of the SIMD layer, per kernel.
  set_overrides_for_testing(parse_overrides("test.beta=avx2"));
  Backend used = Backend::kScalar;
  TagFn* fn = beta_table().resolve(used);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(), 202);
  EXPECT_EQ(used, Backend::kSse2);
}

TEST_F(RegistryTest, UnknownKernelRuleIsHarmless) {
  set_overrides_for_testing(parse_overrides("no.such.kernel=avx2"));
  EXPECT_EQ(resolved_backend("no.such.kernel"), Backend::kScalar);
  // Other kernels are unaffected.
  if (sse2_ready()) {
    simd::ScopedBackend force(Backend::kSse2);
    EXPECT_NE(alpha_table().resolve(), nullptr);
  }
}

// --- registry.hpp: introspection ----------------------------------------

TEST_F(RegistryTest, IntrospectionListsTestKernels) {
  bool saw_alpha = false, saw_gamma = false;
  for (const KernelInfo& k : kernels()) {
    if (k.name == "test.alpha") {
      saw_alpha = true;
      EXPECT_TRUE(k.has_check);
      EXPECT_DOUBLE_EQ(k.check_tolerance, 0.5);
      std::vector<Backend> want;
      if (simd::backend_compiled(Backend::kSse2)) want.push_back(Backend::kSse2);
      if (simd::backend_compiled(Backend::kAvx2)) want.push_back(Backend::kAvx2);
      EXPECT_EQ(k.variants, want);
    }
    if (k.name == "test.gamma") {
      saw_gamma = true;
      EXPECT_TRUE(k.variants.empty());
      EXPECT_FALSE(k.has_check);
    }
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_gamma);

  double tol = 0.0;
  CheckFn fn = check("test.alpha", &tol);
  ASSERT_NE(fn, nullptr);
  EXPECT_DOUBLE_EQ(tol, 0.5);
  EXPECT_DOUBLE_EQ(fn(Backend::kSse2), 0.25);
  EXPECT_EQ(check("test.gamma"), nullptr);
}

TEST_F(RegistryTest, ManifestFormat) {
  const std::string m = manifest();
  EXPECT_NE(m.find("test.gamma\tscalar\n"), std::string::npos);
  if (sse2_ready() && avx2_ready()) {
    EXPECT_NE(m.find("test.alpha\tscalar,sse2,avx2\n"), std::string::npos);
    EXPECT_NE(m.find("test.beta\tscalar,sse2\n"), std::string::npos);
  }
}

// --- registry.hpp: series observation -----------------------------------

TEST_F(RegistryTest, ObservationRecordsResolvedKernels) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  simd::ScopedBackend force(Backend::kSse2);
  begin_observation();
  (void)alpha_table().resolve();
  (void)gamma_table().resolve();  // scalar resolutions are recorded too
  (void)alpha_table().resolve();  // deduped by kernel
  const auto observed = take_observation();
  ASSERT_EQ(observed.size(), 2u);  // sorted by kernel name
  EXPECT_EQ(observed[0].kernel, "test.alpha");
  EXPECT_EQ(observed[0].backend, Backend::kSse2);
  EXPECT_EQ(observed[0].provenance, Provenance::kScoped);
  EXPECT_EQ(observed[1].kernel, "test.gamma");
  EXPECT_EQ(observed[1].backend, Backend::kScalar);
  EXPECT_EQ(observed[1].provenance, Provenance::kScoped);
  // The observation window is closed: nothing accumulates afterwards.
  (void)alpha_table().resolve();
  begin_observation();
  EXPECT_TRUE(take_observation().empty());
}

// --- autotune.hpp: empirical per-size-class winner selection -------------

// test.delta registers one native variant (sse2) plus a deterministic
// calibration probe that always ranks sse2 ahead of scalar, so the
// autotuned winner is machine-independent.
int tag_delta_sse2() { return 302; }

double delta_tune(Backend b, std::size_t /*n*/) {
  return b == Backend::kSse2 ? 1e-6 : 2e-6;
}

const kernel_table<TagFn>& delta_table() {
  static const kernel_table<TagFn> t("test.delta");
  static const variant_registrar<TagFn> sse2("test.delta", Backend::kSse2, &tag_delta_sse2);
  static const tune_registrar tune("test.delta", &delta_tune);
  return t;
}

class AutotuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    delta_table();
    set_overrides_for_testing({});
    unsetenv("OOKAMI_TUNE_FILE");
    set_autotune_enabled_for_testing(1);
    reset_autotune_for_testing();
  }
  void TearDown() override {
    set_overrides_for_testing({});
    unsetenv("OOKAMI_TUNE_FILE");
    set_autotune_enabled_for_testing(-1);
    reset_autotune_for_testing();
  }
  static std::string tmp_path(const char* leaf) { return ::testing::TempDir() + leaf; }
};

TEST(AutotuneSizeClass, Log2Buckets) {
  EXPECT_EQ(size_class_of(0), 0);
  EXPECT_EQ(size_class_of(1), 0);
  EXPECT_EQ(size_class_of(2), 1);
  EXPECT_EQ(size_class_of(3), 1);
  EXPECT_EQ(size_class_of(1023), 9);
  EXPECT_EQ(size_class_of(1024), 10);
  EXPECT_EQ(size_class_of((std::size_t{1} << 20) - 1), 19);
  EXPECT_EQ(size_class_of(std::size_t{1} << 20), 20);
}

TEST_F(AutotuneTest, FirstSizedResolveCalibratesThenCaches) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  ASSERT_EQ(calibration_count(), 0u);
  Backend used = Backend::kScalar;
  TagFn* fn = delta_table().resolve(1000, used);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(), 302);
  EXPECT_EQ(used, Backend::kSse2);
  EXPECT_EQ(calibration_count(), 1u);
  // Same size-class (floor(log2) == 9): pure table hit.
  (void)delta_table().resolve(513, used);
  (void)delta_table().resolve(1023, used);
  EXPECT_EQ(calibration_count(), 1u);
  // A different size-class calibrates once more, then also caches.
  (void)delta_table().resolve(100000, used);
  EXPECT_EQ(calibration_count(), 2u);
  (void)delta_table().resolve(90000, used);
  EXPECT_EQ(calibration_count(), 2u);

  const std::vector<TuneRow> rows = tuning_table();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].kernel, "test.delta");
  EXPECT_EQ(rows[0].size_class, 9);
  EXPECT_EQ(rows[0].winner, Backend::kSse2);
  ASSERT_EQ(rows[0].measured.size(), 2u);  // scalar + sse2 candidates
  EXPECT_EQ(rows[1].size_class, 16);
}

TEST_F(AutotuneTest, ObservationReportsAutotuneProvenance) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  begin_observation();
  (void)delta_table().resolve(1000);
  const auto observed = take_observation();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].kernel, "test.delta");
  EXPECT_EQ(observed[0].backend, Backend::kSse2);
  EXPECT_EQ(observed[0].provenance, Provenance::kAutotune);
}

TEST_F(AutotuneTest, UnsizedResolveNeverCalibrates) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  (void)delta_table().resolve();
  EXPECT_EQ(calibration_count(), 0u);
}

TEST_F(AutotuneTest, ScopedBackendAndEnvRuleOutrankAutotune) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  {
    // Precedence 1: a ScopedBackend skips autotune entirely (this is
    // also what keeps TuneFn-owned calibration from recursing).
    simd::ScopedBackend force(Backend::kScalar);
    EXPECT_EQ(delta_table().resolve(1000), nullptr);
    EXPECT_EQ(calibration_count(), 0u);
  }
  // Precedence 2: an OOKAMI_KERNEL_BACKEND rule also wins over the
  // tuning table, with env-rule provenance.
  set_overrides_for_testing(parse_overrides("test.delta=scalar"));
  begin_observation();
  EXPECT_EQ(delta_table().resolve(1000), nullptr);
  const auto observed = take_observation();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].provenance, Provenance::kEnvRule);
  EXPECT_EQ(calibration_count(), 0u);
}

TEST_F(AutotuneTest, KillSwitchFallsBackToCeiling) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  set_autotune_enabled_for_testing(0);  // what OOKAMI_AUTOTUNE=0 does
  begin_observation();
  Backend used = Backend::kScalar;
  TagFn* fn = delta_table().resolve(1000, used);
  ASSERT_NE(fn, nullptr);          // ceiling still clamps into sse2
  EXPECT_EQ(used, Backend::kSse2);
  EXPECT_EQ(calibration_count(), 0u);
  const auto observed = take_observation();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].provenance, Provenance::kCeiling);
}

TEST_F(AutotuneTest, PersistenceRoundTrip) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  const std::string path = tmp_path("ookami_tune_roundtrip.json");
  (void)delta_table().resolve(1000);
  ASSERT_EQ(calibration_count(), 1u);
  std::string error;
  ASSERT_TRUE(save_tune_file(path, &error)) << error;

  reset_autotune_for_testing();
  ASSERT_TRUE(tuning_table().empty());
  ASSERT_TRUE(load_tune_file(path, &error)) << error;
  const std::vector<TuneRow> rows = tuning_table();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].kernel, "test.delta");
  EXPECT_EQ(rows[0].size_class, 9);
  EXPECT_EQ(rows[0].winner, Backend::kSse2);
  // The loaded table is a warm cache: resolving again re-measures nothing.
  Backend used = Backend::kScalar;
  (void)delta_table().resolve(1000, used);
  EXPECT_EQ(used, Backend::kSse2);
  EXPECT_EQ(calibration_count(), 0u);
  std::remove(path.c_str());
}

TEST_F(AutotuneTest, EnvFileMakesSecondRunFullyWarm) {
  if (!sse2_ready()) GTEST_SKIP() << "sse2 backend not compiled/supported";
  const std::string path = tmp_path("ookami_tune_warm.json");
  std::remove(path.c_str());
  setenv("OOKAMI_TUNE_FILE", path.c_str(), 1);
  // "First run": calibrates and persists the table as a side effect.
  (void)delta_table().resolve(1000);
  EXPECT_EQ(calibration_count(), 1u);
  // "Second run": fresh state, same env — the lazy load satisfies the
  // resolve with zero calibration re-runs (the CI warm-start check).
  reset_autotune_for_testing();
  Backend used = Backend::kScalar;
  (void)delta_table().resolve(1000, used);
  EXPECT_EQ(used, Backend::kSse2);
  EXPECT_EQ(calibration_count(), 0u);
  std::remove(path.c_str());
}

TEST_F(AutotuneTest, StrictLoadRejectsMalformedAndUnversionedFiles) {
  const std::string path = tmp_path("ookami_tune_bad.json");
  std::string error;
  // Unreadable.
  std::remove(path.c_str());
  EXPECT_FALSE(load_tune_file(path, &error));
  // Bad JSON.
  { std::ofstream(path) << "{nope"; }
  error.clear();
  EXPECT_FALSE(load_tune_file(path, &error));
  EXPECT_FALSE(error.empty());
  // Well-formed JSON, wrong/missing schema tag.
  { std::ofstream(path) << R"({"schema": "bogus-9", "entries": []})"; }
  error.clear();
  EXPECT_FALSE(load_tune_file(path, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  // Versioned but with a malformed row: rejected all-or-nothing.
  {
    std::ofstream(path) << R"({"schema": "ookami-tune-1", "entries": [)"
                        << R"({"kernel": "k", "size_class": 3, "winner": "neon"}]})";
  }
  error.clear();
  EXPECT_FALSE(load_tune_file(path, &error));
  EXPECT_TRUE(tuning_table().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ookami::dispatch
