// Failure-mode tests for the serve HTTP client: bounded connect retry
// against a dead port, hard failure on a mid-response close, patience
// with a server that dribbles the header a few bytes at a time, and
// keep-alive reuse across requests.  Each test scripts one end of the
// socket directly, so the behaviors are deterministic rather than
// scheduling-dependent.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>

#include "ookami/serve/http.hpp"

namespace ookami::serve {
namespace {

/// One-connection scripted server: listens on an ephemeral loopback
/// port, accepts a single client, and hands the connected fd to the
/// script.  The script owns the conversation; the fd closes after it.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::function<void(int fd)> script) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("ScriptedServer: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd_, 1) != 0) {
      throw std::runtime_error("ScriptedServer: bind/listen failed");
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this, script = std::move(script)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        script(fd);
        ::close(fd);
      }
    });
  }

  ~ScriptedServer() {
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// Read until the request's blank line so the scripted side never
/// races ahead of the client's send.
void drain_request(int fd) {
  std::string buf;
  char chunk[1024];
  while (buf.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

void send_raw(int fd, const std::string& data) {
  (void)::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
}

/// An ephemeral port with nothing listening: bind, record, close.
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(HttpClient, ConnectionRefusedFailsFastAfterBoundedRetries) {
  // 3 attempts x 20 ms backoff: the throw must arrive well under the
  // default ~1 s budget, and the message must carry host:port.
  HttpClient client("127.0.0.1", dead_port(), /*connect_attempts=*/3);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    client.get("/healthz");
    FAIL() << "expected connection failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot connect"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("127.0.0.1"), std::string::npos);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 800);
}

TEST(HttpClient, ConnectAttemptsClampToAtLeastOne) {
  // A nonsense attempt count still makes exactly one try (and fails).
  HttpClient client("127.0.0.1", dead_port(), /*connect_attempts=*/-5);
  EXPECT_THROW(client.get("/"), std::runtime_error);
}

TEST(HttpClient, BadHostIsATypedErrorNotARetryLoop) {
  HttpClient client("not-an-ipv4-literal", 80, /*connect_attempts=*/1);
  try {
    client.get("/");
    FAIL() << "expected bad-host failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad IPv4 host"), std::string::npos);
  }
}

TEST(HttpClient, MidResponseCloseThrowsInsteadOfTruncating) {
  // The server promises 100 bytes, delivers 5, and hangs up.  A client
  // that returned the truncated body would silently corrupt results;
  // ours must throw.
  ScriptedServer server([](int fd) {
    drain_request(fd);
    send_raw(fd, "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort");
  });
  HttpClient client("127.0.0.1", server.port());
  try {
    client.get("/run");
    FAIL() << "expected mid-response failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mid-response"), std::string::npos);
  }
}

TEST(HttpClient, HeaderClosedBeforeBlankLineThrows) {
  ScriptedServer server([](int fd) {
    drain_request(fd);
    send_raw(fd, "HTTP/1.1 200 OK\r\nContent-Le");  // cut inside the header
  });
  HttpClient client("127.0.0.1", server.port());
  EXPECT_THROW(client.get("/"), std::runtime_error);
}

TEST(HttpClient, SlowHeaderDribbleStillAssembles) {
  // The response arrives a few bytes at a time across ~20 recv()s;
  // the reader must keep filling until the header block and the full
  // Content-Length body are in.
  const std::string response =
      "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
      "Content-Length: 17\r\n\r\n{\"status\": \"ok\"}\n";
  ScriptedServer server([&response](int fd) {
    drain_request(fd);
    for (std::size_t off = 0; off < response.size(); off += 5) {
      send_raw(fd, response.substr(off, 5));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  HttpClient client("127.0.0.1", server.port());
  const HttpClient::Result r = client.get("/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "{\"status\": \"ok\"}\n");
}

TEST(HttpClient, OversizedContentLengthIsRejected) {
  // 2 MiB claimed body exceeds the reader's 1 MiB cap: fail the
  // roundtrip rather than buffering unbounded attacker-chosen bytes.
  ScriptedServer server([](int fd) {
    drain_request(fd);
    send_raw(fd, "HTTP/1.1 200 OK\r\nContent-Length: 2097152\r\n\r\n");
  });
  HttpClient client("127.0.0.1", server.port());
  EXPECT_THROW(client.get("/"), std::runtime_error);
}

TEST(HttpClient, KeepAliveReusesOneConnectionForSequentialRequests) {
  // Two requests, one accept: if the client reconnected per request
  // the second would hit the (single-accept) script's closed listener.
  ScriptedServer server([](int fd) {
    for (int i = 0; i < 2; ++i) {
      drain_request(fd);
      const std::string body = i == 0 ? "first" : "second";
      send_raw(fd, "HTTP/1.1 200 OK\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\n\r\n" + body);
    }
  });
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/a").body, "first");
  EXPECT_EQ(client.post("/b", "{}").body, "second");
}

}  // namespace
}  // namespace ookami::serve
