// Unit tests for ookami/common: RNG, permutations, statistics, thread
// pool, tables, CLI parsing, aligned allocation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

#include "ookami/common/aligned.hpp"
#include "ookami/common/cli.hpp"
#include "ookami/common/rng.hpp"
#include "ookami/common/stats.hpp"
#include "ookami/common/table.hpp"
#include "ookami/common/threadpool.hpp"
#include "ookami/common/timer.hpp"

namespace ookami {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedIsUnbiasedEnough) {
  Xoshiro256 rng(7);
  std::array<int, 10> hist{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hist[rng.bounded(10)] += 1;
  for (int h : hist) {
    EXPECT_NEAR(h, kDraws / 10, kDraws / 100);  // within 10% of uniform
  }
}

TEST(Rng, CounterRngIsStateless) {
  CounterRng a(5);
  EXPECT_EQ(a.bits(123), CounterRng(5).bits(123));
  EXPECT_NE(a.bits(123), a.bits(124));
  EXPECT_NE(a.bits(123), CounterRng(6).bits(123));
}

TEST(Rng, RandomPermutationIsPermutation) {
  Xoshiro256 rng(3);
  const auto p = random_permutation(1000, rng);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

class WindowedPermutationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowedPermutationTest, StaysInWindow) {
  const std::size_t window = GetParam();
  Xoshiro256 rng(9);
  const std::size_t n = 1000;
  const auto p = windowed_permutation(n, window, rng);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), n);  // still a permutation
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(i / window, p[i] / window) << "index escaped its window at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowedPermutationTest,
                         ::testing::Values(2, 4, 16, 64, 1000));

TEST(Stats, SummaryMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944487, 1e-9);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Stats, MedianOdd) {
  Summary s;
  for (double v : {5.0, 1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

// Regression: empty accumulators used to report min()/max() as 0.0 — a
// plausible-looking measurement had it leaked into a result file.  The
// sentinel is now quiet NaN, which serializes to null in the harness.
TEST(Stats, EmptySummaryIsNaNSentinel) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  // median() used to return 0.0 here — the same plausible-measurement
  // hazard the min()/max() sentinel already closed.
  EXPECT_TRUE(std::isnan(s.median()));
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
}

TEST(ThreadPool, StaticChunksCoverRange) {
  for (unsigned nthreads : {1u, 3u, 7u}) {
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (unsigned t = 0; t < nthreads; ++t) {
      const auto [b, e] = ThreadPool::static_chunk(100, t, nthreads);
      EXPECT_EQ(b, prev_end);
      covered += e - b;
      prev_end = e;
    }
    EXPECT_EQ(covered, 100u);
  }
}

TEST(ThreadPool, ParallelForVisitsEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelReduceSum) {
  ThreadPool pool(4);
  const double total = pool.parallel_reduce(
      0, 1000, 0.0,
      [](std::size_t b, std::size_t e, unsigned) {
        double s = 0.0;
        for (std::size_t i = b; i < e; ++i) s += static_cast<double>(i);
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(total, 999.0 * 1000.0 / 2.0);
}

// Regression: a non-identity `init` used to seed every per-thread
// partial AND the final fold, so it was incorporated num_threads + 1
// times.  Integer-valued doubles keep the arithmetic exact, so the
// result must be bit-identical for any thread count.
TEST(ThreadPool, ParallelReduceFoldsInitExactlyOnce) {
  constexpr double kInit = 100.0;
  constexpr std::size_t kN = 1000;
  const double expected = kInit + 999.0 * 1000.0 / 2.0;
  for (unsigned nthreads = 1; nthreads <= 8; ++nthreads) {
    ThreadPool pool(nthreads);
    const double total = pool.parallel_reduce(
        0, kN, kInit,
        [](std::size_t b, std::size_t e, unsigned) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += static_cast<double>(i);
          return s;
        },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(total, expected) << "with " << nthreads << " threads";
  }
}

TEST(ThreadPool, ParallelReduceProductWithNonIdentityInit) {
  // product of 1..8 scaled by init=2: any double-counting of init is
  // a power-of-two error, unmissable.
  for (unsigned nthreads : {1u, 2u, 3u, 5u, 8u}) {
    ThreadPool pool(nthreads);
    const double total = pool.parallel_reduce(
        1, 9, 2.0,
        [](std::size_t b, std::size_t e, unsigned) {
          double p = 1.0;
          for (std::size_t i = b; i < e; ++i) p *= static_cast<double>(i);
          return p;
        },
        [](double a, double b) { return a * b; });
    EXPECT_EQ(total, 2.0 * 40320.0) << "with " << nthreads << " threads";
  }
}

TEST(ThreadPool, ParallelReduceMoreThreadsThanWork) {
  ThreadPool pool(8);
  const double total = pool.parallel_reduce(
      0, 3, 5.0,
      [](std::size_t b, std::size_t e, unsigned) {
        return static_cast<double>(e - b);
      },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(total, 8.0);  // init(5) + 3 elements, idle threads contribute nothing
}

TEST(ThreadPool, ParallelReduceEmptyRangeReturnsInit) {
  ThreadPool pool(4);
  const double total = pool.parallel_reduce(
      7, 7, 42.0, [](std::size_t, std::size_t, unsigned) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(total, 42.0);
}

TEST(ThreadPool, NestedParallelForDegradesToSerial) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t, unsigned) {
    pool.parallel_for(0, 10, [&](std::size_t b, std::size_t e, unsigned) {
      count += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(count.load(), 40);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForRethrowsWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t b, std::size_t, unsigned) {
                          if (b == 0) throw std::runtime_error("worker failed");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionOnly) {
  // Every worker throws; exactly one exception must reach the caller and
  // its message must be one the workers actually produced.
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 100, [](std::size_t, std::size_t, unsigned t) {
      throw std::runtime_error("worker " + std::to_string(t));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("worker ", 0), 0u);
  }
}

TEST(ThreadPool, ParallelReduceRethrowsWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_reduce(
          0, 100, 0.0,
          [](std::size_t b, std::size_t, unsigned) -> double {
            if (b == 0) throw std::domain_error("reduce failed");
            return 1.0;
          },
          [](double a, double b) { return a + b; }),
      std::domain_error);
}

TEST(ThreadPool, PoolUsableAfterWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [](std::size_t, std::size_t, unsigned) {
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 64, [&](std::size_t b, std::size_t e, unsigned) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 64);
  const double total = pool.parallel_reduce(
      0, 10, 0.0, [](std::size_t b, std::size_t e, unsigned) { return double(e - b); },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(total, 10.0);
}

TEST(Table, AlignedRendering) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  const std::string s = t.str();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  TextTable t({"a", "b"});
  t.add_row({"x,y", "quo\"te"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
}

// Regression: all-zero (and non-finite) values must render zero-width
// bars, not NaN-scaled garbage from the value/max division.
TEST(Table, BarChartAllZeroRendersZeroWidthBars) {
  BarChart chart("zeros", 40);
  chart.add("a", 0.0);
  chart.add("b", 0.0);
  const std::string s = chart.str();
  EXPECT_EQ(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("0.000"), std::string::npos);
}

TEST(Table, BarChartEmptyIsJustTitle) {
  BarChart chart("nothing", 40);
  EXPECT_EQ(chart.str(), "nothing\n");
}

TEST(Table, BarChartNonFiniteValuesRenderZeroWidth) {
  BarChart chart("mixed", 10);
  chart.add("nan", std::numeric_limits<double>::quiet_NaN());
  chart.add("inf", std::numeric_limits<double>::infinity());
  chart.add("ok", 5.0);
  const std::string s = chart.str();
  // Only the finite entry draws bars, scaled to the chart width.
  EXPECT_NE(s.find(std::string(10, '#')), std::string::npos);
  EXPECT_EQ(s.find(std::string(11, '#')), std::string::npos);
  std::size_t bars = 0;
  for (char c : s) bars += c == '#' ? 1 : 0;
  EXPECT_EQ(bars, 10u);
}

TEST(Table, GroupedSeriesRoundTrip) {
  GroupedSeries g("title", "loop");
  g.set("simple", "fujitsu", 1.5);
  g.set("simple", "gnu", 2.5);
  g.set("gather", "fujitsu", 2.0);
  EXPECT_DOUBLE_EQ(g.get("simple", "gnu"), 2.5);
  EXPECT_TRUE(g.has("gather", "fujitsu"));
  EXPECT_FALSE(g.has("gather", "gnu"));
  EXPECT_THROW(g.get("nope", "gnu"), std::out_of_range);
  EXPECT_NE(g.table().find("simple"), std::string::npos);
}

TEST(Cli, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "pos1", "--n", "42", "--flag", "--x=3.5"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 3.5);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Aligned, VectorIsAligned) {
  avec<double> v(100);
  EXPECT_TRUE(is_aligned(v.data(), kDefaultAlignment));
}

TEST(Timer, MeasuresElapsedTime) {
  const auto s = time_repeated([] {
    volatile double x = 0.0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  }, 3);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_GT(s.mean(), 0.0);
}

}  // namespace
}  // namespace ookami
