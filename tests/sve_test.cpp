// Unit tests for the SVE emulation layer: predication semantics,
// loads/stores, gather/scatter, conversions, reductions, and the
// bit-level FEXPA / FRECPE / FRSQRTE instructions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "ookami/common/rng.hpp"
#include "ookami/sve/fexpa.hpp"
#include "ookami/sve/sve.hpp"

namespace ookami::sve {
namespace {

TEST(Pred, WhileltShapes) {
  EXPECT_TRUE(whilelt(0, 8).all());
  EXPECT_FALSE(whilelt(8, 8).any());
  const Pred tail = whilelt(5, 8);
  EXPECT_EQ(tail.count(), 3);
  EXPECT_TRUE(tail[0] && tail[1] && tail[2]);
  EXPECT_FALSE(tail[3]);
}

TEST(Pred, BooleanAlgebra) {
  const Pred a = whilelt(0, 3);
  const Pred b = whilelt(0, 6);
  EXPECT_EQ((a & b), a);
  EXPECT_EQ((a | b), b);
  EXPECT_EQ((!a & a), pfalse());
  EXPECT_EQ((!pfalse()), ptrue());
}

TEST(LoadStore, PredicatedTailDoesNotTouchInactiveLanes) {
  double src[kLanes], dst[kLanes];
  for (int i = 0; i < kLanes; ++i) {
    src[i] = i + 1.0;
    dst[i] = -7.0;
  }
  const Pred pg = whilelt(0, 5);
  st1(pg, dst, ld1(pg, src));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dst[i], src[i]);
  for (int i = 5; i < kLanes; ++i) EXPECT_EQ(dst[i], -7.0);
}

TEST(GatherScatter, RoundTripThroughPermutation) {
  Xoshiro256 rng(11);
  const std::size_t n = 64;
  std::vector<double> x(n), y(n, 0.0), z(n, 0.0);
  fill_uniform(x, 0.0, 1.0, rng);
  const auto idx = random_permutation(n, rng);
  for (std::size_t i = 0; i < n; i += kLanes) {
    const Pred pg = whilelt(i, n);
    st1(pg, y.data() + i, gather(pg, x.data(), idx.data() + i));
  }
  for (std::size_t i = 0; i < n; i += kLanes) {
    const Pred pg = whilelt(i, n);
    scatter(pg, z.data(), idx.data() + i, ld1(pg, y.data() + i));
  }
  // scatter(idx, gather(idx, x)) == x
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(z[i], x[i]);
}

TEST(Arithmetic, MergingSemantics) {
  Vec a(2.0), b(3.0);
  const Pred pg = whilelt(0, 4);
  const Vec r = add(pg, a, b);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], 5.0);
  for (int i = 4; i < kLanes; ++i) EXPECT_EQ(r[i], 2.0);  // inactive keep a
}

TEST(Arithmetic, FmaSingleRounding) {
  // Choose values where fused and unfused differ.
  const double a = 1.0 + 0x1.0p-30, b = 1.0 - 0x1.0p-30, c = -1.0;
  const Vec r = fma(Vec(a), Vec(b), Vec(c));
  EXPECT_EQ(r[0], std::fma(a, b, c));
  EXPECT_NE(r[0], a * b + c);  // the unfused result rounds differently
}

TEST(Conversion, FcvtzsSaturatesAndHandlesNan) {
  Vec v;
  v[0] = 1.9;
  v[1] = -1.9;
  v[2] = std::numeric_limits<double>::quiet_NaN();
  v[3] = 1e30;
  v[4] = -1e30;
  const VecS64 r = fcvtzs(v);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], -1);
  EXPECT_EQ(r[2], 0);
  EXPECT_EQ(r[3], std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r[4], std::numeric_limits<std::int64_t>::min());
}

TEST(Conversion, FrintnRoundsToEven) {
  Vec v;
  v[0] = 0.5;
  v[1] = 1.5;
  v[2] = 2.5;
  v[3] = -0.5;
  const Vec r = frintn(v);
  EXPECT_EQ(r[0], 0.0);
  EXPECT_EQ(r[1], 2.0);
  EXPECT_EQ(r[2], 2.0);
  EXPECT_EQ(r[3], -0.0);
}

TEST(Reduction, ActiveLanesOnly) {
  Vec v;
  for (int i = 0; i < kLanes; ++i) v[i] = i + 1.0;
  const Pred pg = whilelt(0, 3);
  EXPECT_DOUBLE_EQ(reduce_add(pg, v), 6.0);
  EXPECT_DOUBLE_EQ(reduce_max(pg, v), 3.0);
  EXPECT_DOUBLE_EQ(reduce_min(pg, v), 1.0);
  EXPECT_DOUBLE_EQ(reduce_add(pfalse(), v), 0.0);
}

TEST(Select, PicksPerLane) {
  const Pred pg = whilelt(0, 2);
  const Vec r = sel(pg, Vec(1.0), Vec(9.0));
  EXPECT_EQ(r[0], 1.0);
  EXPECT_EQ(r[1], 1.0);
  EXPECT_EQ(r[2], 9.0);
}

// --- FEXPA -----------------------------------------------------------------

TEST(Fexpa, TableIsFractionOfExp2) {
  const std::uint64_t* t = fexpa_table();
  for (int i = 0; i < 64; ++i) {
    const double v = std::exp2(static_cast<double>(i) / 64.0);
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    EXPECT_EQ(t[i], bits & ((1ull << 52) - 1)) << "entry " << i;
  }
}

class FexpaExactness : public ::testing::TestWithParam<int> {};

TEST_P(FexpaExactness, Computes2PowMPlusIOver64) {
  const int m = GetParam();
  for (int i = 0; i < 64; ++i) {
    const auto input = static_cast<std::uint64_t>(((m + 1023) << 6) | i);
    const std::uint64_t out = fexpa_scalar(input);
    double got;
    std::memcpy(&got, &out, sizeof(got));
    const double want = std::exp2(m + static_cast<double>(i) / 64.0);
    // The table entry is correctly rounded, so the product decomposition
    // matches the directly computed value to <= 1 ulp.
    EXPECT_NEAR(got / want, 1.0, 3e-16) << "m=" << m << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, FexpaExactness, ::testing::Values(-100, -1, 0, 1, 7, 100, 900));

TEST(Fexpa, VectorMatchesScalar) {
  VecU64 u;
  for (int i = 0; i < kLanes; ++i) u[i] = static_cast<std::uint64_t>((1023 << 6) + i * 3);
  const Vec v = fexpa(u);
  for (int i = 0; i < kLanes; ++i) {
    double want;
    const std::uint64_t w = fexpa_scalar(u[i]);
    std::memcpy(&want, &w, sizeof(want));
    EXPECT_EQ(v[i], want);
  }
}

// --- Estimates -------------------------------------------------------------

TEST(Estimates, FrecpeWithin8Bits) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    const double x = rng.uniform(1e-3, 1e3);
    const Vec r = frecpe(Vec(x));
    EXPECT_NEAR(r[0] * x, 1.0, 0x1.0p-8) << "x=" << x;
  }
}

TEST(Estimates, FrsqrteWithin8Bits) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 1000; ++trial) {
    const double x = rng.uniform(1e-3, 1e3);
    const Vec r = frsqrte(Vec(x));
    EXPECT_NEAR(r[0] * r[0] * x, 1.0, 0x1.0p-6) << "x=" << x;
  }
}

TEST(Estimates, SpecialValues) {
  EXPECT_EQ(frecpe(Vec(0.0))[0], HUGE_VAL);
  EXPECT_EQ(frecpe(Vec(-0.0))[0], -HUGE_VAL);
  EXPECT_EQ(frecpe(Vec(HUGE_VAL))[0], 0.0);
  EXPECT_TRUE(std::isnan(frecpe(Vec(NAN))[0]));
  EXPECT_TRUE(std::isnan(frsqrte(Vec(-1.0))[0]));
  EXPECT_EQ(frsqrte(Vec(0.0))[0], HUGE_VAL);
  EXPECT_EQ(frsqrte(Vec(HUGE_VAL))[0], 0.0);
}

TEST(Estimates, NewtonStepCoefficients) {
  // frecps(a, b) = 2 - a*b ; frsqrts(a, b) = (3 - a*b)/2, both fused.
  EXPECT_DOUBLE_EQ(frecps(Vec(0.5), Vec(1.0))[0], 1.5);
  EXPECT_DOUBLE_EQ(frsqrts(Vec(1.0), Vec(1.0))[0], 1.0);
}

}  // namespace
}  // namespace ookami::sve
