// Accuracy and edge-case tests for the vector math library — the
// quantitative backbone of the paper's Section IV claims (FEXPA exp at
// ~6 ulp fast / better when the last FMA is corrected; Newton division
// and square root at full precision).

#include <gtest/gtest.h>

#include <cmath>

#include "ookami/common/aligned.hpp"
#include "ookami/common/rng.hpp"
#include "ookami/vecmath/vecmath.hpp"

namespace ookami::vecmath {
namespace {

using sve::Vec;

double exp1(double x, PolyScheme s, Rounding r) { return exp_fexpa(Vec(x), s, r)[0]; }

// --- ULP plumbing ----------------------------------------------------------

TEST(Ulp, DistanceBasics) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ulp_distance(-0.0, 0.0), 0u);
  EXPECT_EQ(ulp_distance(NAN, NAN), 0u);
  EXPECT_EQ(ulp_distance(NAN, 1.0), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ulp_distance(-1.0, std::nextafter(-1.0, 0.0)), 1u);
}

// --- exp -------------------------------------------------------------------

struct ExpCase {
  PolyScheme scheme;
  Rounding rounding;
  double max_ulp;
};

class ExpAccuracy : public ::testing::TestWithParam<ExpCase> {};

TEST_P(ExpAccuracy, SweepAgainstLibm) {
  const auto [scheme, rounding, bound] = GetParam();
  const auto rep = ulp_sweep([&](double x) { return exp1(x, scheme, rounding); },
                             [](double x) { return std::exp(x); }, -700.0, 700.0, 50000);
  EXPECT_LE(rep.max_ulp, bound) << "worst at x=" << rep.worst_input;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ExpAccuracy,
    ::testing::Values(ExpCase{PolyScheme::kHorner, Rounding::kFast, 8.0},
                      ExpCase{PolyScheme::kEstrin, Rounding::kFast, 8.0},
                      ExpCase{PolyScheme::kHorner, Rounding::kCorrected, 4.0},
                      ExpCase{PolyScheme::kEstrin, Rounding::kCorrected, 4.0}));

TEST(Exp, CorrectedIsMoreAccurateThanFast) {
  auto sweep = [](Rounding r) {
    return ulp_sweep([&](double x) { return exp1(x, PolyScheme::kEstrin, r); },
                     [](double x) { return std::exp(x); }, -50.0, 50.0, 20000)
        .mean_ulp;
  };
  EXPECT_LT(sweep(Rounding::kCorrected), sweep(Rounding::kFast));
}

TEST(Exp, Table13MatchesLibm) {
  const auto rep = ulp_sweep([](double x) { return exp_table13(Vec(x))[0]; },
                             [](double x) { return std::exp(x); }, -700.0, 700.0, 50000);
  EXPECT_LE(rep.max_ulp, 8.0);
}

TEST(Exp, ProductionEdgeCases) {
  EXPECT_EQ(exp_scalar(HUGE_VAL), HUGE_VAL);
  EXPECT_EQ(exp_scalar(710.0), HUGE_VAL);        // overflow -> +inf
  EXPECT_EQ(exp_scalar(-710.0), 0.0);            // underflow, flush-to-zero
  EXPECT_EQ(exp_scalar(-HUGE_VAL), 0.0);
  EXPECT_TRUE(std::isnan(exp_scalar(NAN)));
  EXPECT_EQ(exp_scalar(0.0), 1.0);
  EXPECT_EQ(exp_scalar(-0.0), 1.0);
  // Near the overflow boundary, finite just below, inf just above.
  EXPECT_TRUE(std::isfinite(exp_scalar(709.7)));
  EXPECT_EQ(exp_scalar(709.9), HUGE_VAL);
}

TEST(Exp, LoopShapesProduceIdenticalResults) {
  Xoshiro256 rng(21);
  const std::size_t n = 1000;  // not a multiple of the vector length
  avec<double> x(n), vla(n), fixed(n), unrolled(n);
  fill_uniform({x.data(), n}, -30.0, 30.0, rng);
  exp_array({x.data(), n}, {vla.data(), n}, LoopShape::kVla);
  exp_array({x.data(), n}, {fixed.data(), n}, LoopShape::kFixed);
  exp_array({x.data(), n}, {unrolled.data(), n}, LoopShape::kUnrolled2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(vla[i], fixed[i]) << i;
    EXPECT_EQ(vla[i], unrolled[i]) << i;
  }
}

TEST(Exp, FlopCountsMatchPaperInstructionBudget) {
  // The paper counts 15 FP instructions in the loop body; our Horner
  // fast variant is the same budget within rounding of the count.
  EXPECT_NEAR(exp_fexpa_flops_per_vector(PolyScheme::kHorner, Rounding::kFast), 15, 3);
  EXPECT_LT(exp_fexpa_flops_per_vector(PolyScheme::kHorner, Rounding::kCorrected),
            exp_fexpa_flops_per_vector(PolyScheme::kHorner, Rounding::kFast));
  EXPECT_GT(exp_fexpa_flops_per_vector(PolyScheme::kEstrin, Rounding::kFast),
            exp_fexpa_flops_per_vector(PolyScheme::kHorner, Rounding::kFast));
}

// --- sin / cos -------------------------------------------------------------

TEST(Trig, SinSweep) {
  const auto rep = ulp_sweep([](double x) { return sin(Vec(x))[0]; },
                             [](double x) { return std::sin(x); }, -100.0, 100.0, 50000);
  EXPECT_LE(rep.max_ulp, 4.0) << "worst at " << rep.worst_input;
}

TEST(Trig, CosSweep) {
  const auto rep = ulp_sweep([](double x) { return cos(Vec(x))[0]; },
                             [](double x) { return std::cos(x); }, -100.0, 100.0, 50000);
  EXPECT_LE(rep.max_ulp, 4.0) << "worst at " << rep.worst_input;
}

TEST(Trig, LargeArgumentStillReduced) {
  // Single-stage Cody-Waite holds to ~2^30.
  const auto rep = ulp_sweep([](double x) { return sin(Vec(x))[0]; },
                             [](double x) { return std::sin(x); }, 1e6, 1e7, 20000);
  EXPECT_LE(rep.max_ulp, 512.0);  // relative ulp degrades as x grows; still ~1e-13 absolute
}

TEST(Trig, NonFiniteInputs) {
  EXPECT_TRUE(std::isnan(sin(Vec(NAN))[0]));
  EXPECT_TRUE(std::isnan(sin(Vec(HUGE_VAL))[0]));
  EXPECT_TRUE(std::isnan(cos(Vec(-HUGE_VAL))[0]));
  EXPECT_EQ(sin(Vec(0.0))[0], 0.0);
  EXPECT_EQ(cos(Vec(0.0))[0], 1.0);
}

// --- log / pow -------------------------------------------------------------

TEST(Log, Sweep) {
  const auto rep = ulp_sweep([](double x) { return log(Vec(x))[0]; },
                             [](double x) { return std::log(x); }, 1e-300, 1e300, 50000);
  EXPECT_LE(rep.max_ulp, 4.0) << "worst at " << rep.worst_input;
}

TEST(Log, NearOne) {
  const auto rep = ulp_sweep([](double x) { return log(Vec(x))[0]; },
                             [](double x) { return std::log(x); }, 0.5, 2.0, 50000);
  EXPECT_LE(rep.max_ulp, 4.0) << "worst at " << rep.worst_input;
}

TEST(Log, EdgeCases) {
  EXPECT_EQ(log(Vec(0.0))[0], -HUGE_VAL);
  EXPECT_TRUE(std::isnan(log(Vec(-1.0))[0]));
  EXPECT_EQ(log(Vec(HUGE_VAL))[0], HUGE_VAL);
  EXPECT_EQ(log(Vec(1.0))[0], 0.0);
  // Subnormal input takes the rescaling path.
  const double sub = 1e-310;
  EXPECT_NEAR(log(Vec(sub))[0], std::log(sub), 1e-12);
}

TEST(Pow, SweepAgainstLibm) {
  Xoshiro256 rng(31);
  double worst = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(1e-3, 1e3);
    const double y = rng.uniform(-20.0, 20.0);
    const double got = pow(Vec(x), Vec(y))[0];
    const double want = std::pow(x, y);
    worst = std::max(worst, static_cast<double>(ulp_distance(got, want)));
  }
  // exp(y log x) amplifies the log error by |y log x|; hundreds of ulp
  // is the expected envelope for an unfused composition.
  EXPECT_LE(worst, 4096.0);
}

TEST(Pow, SpecialCases) {
  EXPECT_EQ(pow(Vec(2.0), Vec(0.0))[0], 1.0);
  EXPECT_EQ(pow(Vec(NAN), Vec(0.0))[0], 1.0);  // IEEE pow(NaN, 0) = 1
  EXPECT_EQ(pow(Vec(0.0), Vec(2.0))[0], 0.0);
  EXPECT_EQ(pow(Vec(0.0), Vec(-1.0))[0], HUGE_VAL);
  EXPECT_TRUE(std::isnan(pow(Vec(-2.0), Vec(0.5))[0]));
  // Negative-base integer powers route through exp(y log|x|):
  // faithfully rounded, not exact.
  EXPECT_LE(ulp_distance(pow(Vec(-2.0), Vec(2.0))[0], 4.0), 4u);
  EXPECT_LE(ulp_distance(pow(Vec(-2.0), Vec(3.0))[0], -8.0), 4u);
  EXPECT_LT(pow(Vec(-2.0), Vec(3.0))[0], 0.0);
  EXPECT_TRUE(std::isnan(pow(Vec(2.0), Vec(NAN))[0]));
}

// --- recip / sqrt ----------------------------------------------------------

TEST(Recip, NewtonReachesFaithfulRounding) {
  const auto rep = ulp_sweep([](double x) { return recip_newton(Vec(x))[0]; },
                             [](double x) { return 1.0 / x; }, 1e-100, 1e100, 50000);
  EXPECT_LE(rep.max_ulp, 1.0) << "worst at " << rep.worst_input;
}

TEST(Sqrt, NewtonReachesFaithfulRounding) {
  const auto rep = ulp_sweep([](double x) { return sqrt_newton(Vec(x))[0]; },
                             [](double x) { return std::sqrt(x); }, 1e-100, 1e100, 50000);
  EXPECT_LE(rep.max_ulp, 1.0) << "worst at " << rep.worst_input;
}

TEST(Sqrt, EdgeCases) {
  EXPECT_EQ(sqrt_newton(Vec(0.0))[0], 0.0);
  EXPECT_TRUE(std::isnan(sqrt_newton(Vec(-1.0))[0]));
  EXPECT_EQ(sqrt_newton(Vec(4.0))[0], 2.0);
  EXPECT_EQ(sqrt_exact(Vec(9.0))[0], 3.0);
}

TEST(RecipSqrt, StrategiesAgree) {
  Xoshiro256 rng(41);
  const std::size_t n = 257;
  avec<double> x(n), a(n), b(n);
  fill_uniform({x.data(), n}, 0.01, 100.0, rng);
  recip_array({x.data(), n}, {a.data(), n}, DivSqrtStrategy::kNewton);
  recip_array({x.data(), n}, {b.data(), n}, DivSqrtStrategy::kBlocking);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(ulp_distance(a[i], b[i]), 1u) << "recip at " << x[i];
  }
  sqrt_array({x.data(), n}, {a.data(), n}, DivSqrtStrategy::kNewton);
  sqrt_array({x.data(), n}, {b.data(), n}, DivSqrtStrategy::kBlocking);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(ulp_distance(a[i], b[i]), 1u) << "sqrt at " << x[i];
  }
}

}  // namespace
}  // namespace ookami::vecmath
