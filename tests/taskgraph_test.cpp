// TaskGraph executor: scheduling semantics, cycle/error handling, and
// the bit-identity contract of the LULESH / NPB SP graph ports against
// their bulk-synchronous reference paths.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ookami/common/threadpool.hpp"
#include "ookami/lulesh/lulesh.hpp"
#include "ookami/npb/sp.hpp"
#include "ookami/taskgraph/taskgraph.hpp"
#include "ookami/trace/aggregate.hpp"
#include "ookami/trace/trace.hpp"

namespace tg = ookami::taskgraph;
using ookami::ThreadPool;

namespace {

/// RAII environment override (tests mutate OOKAMI_TASKGRAPH* knobs).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_;
  std::string old_;
};

}  // namespace

TEST(TaskGraphConfig, DefaultExecFollowsEnvironment) {
  {
    ScopedEnv e("OOKAMI_TASKGRAPH", nullptr);
    EXPECT_EQ(tg::default_exec(), tg::Exec::kBarrier);
  }
  {
    ScopedEnv e("OOKAMI_TASKGRAPH", "1");
    EXPECT_EQ(tg::default_exec(), tg::Exec::kGraph);
  }
  {
    ScopedEnv e("OOKAMI_TASKGRAPH", "on");
    EXPECT_EQ(tg::default_exec(), tg::Exec::kGraph);
  }
  {
    ScopedEnv e("OOKAMI_TASKGRAPH", "0");
    EXPECT_EQ(tg::default_exec(), tg::Exec::kBarrier);
  }
  EXPECT_STREQ(tg::exec_name(tg::Exec::kGraph), "graph");
  EXPECT_STREQ(tg::exec_name(tg::Exec::kBarrier), "barrier");
}

TEST(TaskGraphConfig, DefaultChunksDoublesThreadsUnlessOverridden) {
  {
    ScopedEnv e("OOKAMI_TASKGRAPH_CHUNKS", nullptr);
    EXPECT_EQ(tg::default_chunks(4), 8u);
    EXPECT_EQ(tg::default_chunks(0), 2u);  // degenerate thread count
  }
  {
    ScopedEnv e("OOKAMI_TASKGRAPH_CHUNKS", "5");
    EXPECT_EQ(tg::default_chunks(4), 5u);
  }
  {
    ScopedEnv e("OOKAMI_TASKGRAPH_CHUNKS", "0");  // clamped to >= 1
    EXPECT_EQ(tg::default_chunks(4), 1u);
  }
}

TEST(TaskGraph, PartitionMatchesParallelForChunks) {
  // partition() must agree with ThreadPool::static_chunk's contiguous
  // split: same chunk count, full disjoint coverage, fronts one longer.
  const auto ranges = tg::TaskGraph::partition(0, 10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  std::size_t expect_begin = 0;
  for (std::size_t c = 0; c < ranges.size(); ++c) {
    const auto [b, e] = ookami::ThreadPool::static_chunk(10, static_cast<unsigned>(c), 4);
    EXPECT_EQ(ranges[c].first, b);
    EXPECT_EQ(ranges[c].second, e);
    EXPECT_EQ(ranges[c].first, expect_begin);
    expect_begin = ranges[c].second;
  }
  EXPECT_EQ(expect_begin, 10u);

  // More chunks than items degrades to one item per chunk.
  EXPECT_EQ(tg::TaskGraph::partition(0, 3, 8).size(), 3u);
  EXPECT_TRUE(tg::TaskGraph::partition(5, 5, 4).empty());
}

TEST(TaskGraph, DiamondRunsEveryTaskOnceInDependencyOrder) {
  ThreadPool pool(4);
  tg::TaskGraph g("test/diamond");
  std::atomic<int> order{0};
  int at_a = -1, at_b = -1, at_c = -1, at_d = -1;
  const tg::TaskId a = g.add("a", [&] { at_a = order.fetch_add(1); });
  const tg::TaskId b = g.add("b", [&] { at_b = order.fetch_add(1); });
  const tg::TaskId c = g.add("c", [&] { at_c = order.fetch_add(1); });
  const tg::TaskId d = g.add("d", [&] { at_d = order.fetch_add(1); });
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  EXPECT_EQ(g.tasks(), 4u);
  EXPECT_EQ(g.edges(), 4u);
  g.run(pool);
  EXPECT_EQ(order.load(), 4);
  EXPECT_LT(at_a, at_b);
  EXPECT_LT(at_a, at_c);
  EXPECT_LT(at_b, at_d);
  EXPECT_LT(at_c, at_d);
}

TEST(TaskGraph, PhaseChainComputesSameAsSequentialLoops) {
  // Three dependent phases over a vector: +1, *2, then a 1:1-chunk sum
  // into per-chunk partials.  The graph must see every dependency.
  constexpr std::size_t kN = 10'000;
  ThreadPool pool(4);
  std::vector<double> v(kN, 1.0);
  tg::TaskGraph g("test/chain");
  const std::size_t chunks = 8;
  auto p1 = g.add_phase("inc", 0, kN, chunks, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) v[i] += 1.0;
  });
  auto p2 = g.add_phase("dbl", 0, kN, chunks, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) v[i] *= 2.0;
  });
  std::vector<double> partial(p2.tasks.size(), 0.0);
  auto ranges = tg::TaskGraph::partition(0, kN, chunks);
  tg::TaskGraph::Phase p3;
  p3.first = 0;
  p3.last = kN;
  p3.ranges = ranges;
  for (std::size_t c = 0; c < ranges.size(); ++c) {
    const auto [b, e] = ranges[c];
    double* slot = &partial[c];
    p3.tasks.push_back(g.add("sum", [&v, b = b, e = e, slot] {
      double acc = 0.0;
      for (std::size_t i = b; i < e; ++i) acc += v[i];
      *slot = acc;
    }));
  }
  g.depend_1to1(p1, p2);
  g.depend_1to1(p2, p3);
  g.run(pool);
  double total = 0.0;
  for (const double p : partial) total += p;
  EXPECT_DOUBLE_EQ(total, 4.0 * kN);  // (1+1)*2 per element
}

TEST(TaskGraph, IntervalDependencyCoversOverlappingProducers) {
  ThreadPool pool(2);
  tg::TaskGraph g("test/interval");
  std::vector<int> stage(100, 0);
  auto prod = g.add_phase("prod", 0, 100, 4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) stage[i] = 1;
  });
  std::atomic<bool> halo_ok{true};
  auto cons = g.add_phase("cons", 0, 100, 4, [&](std::size_t b, std::size_t e) {
    // Each consumer chunk reads a +/-10 halo of the producer array; the
    // interval edges must have forced those producer chunks first.
    const std::size_t lo = b >= 10 ? b - 10 : 0;
    const std::size_t hi = std::min<std::size_t>(100, e + 10);
    for (std::size_t i = lo; i < hi; ++i) {
      if (stage[i] != 1) halo_ok.store(false);
    }
  });
  g.depend_interval(prod, cons, [](std::size_t b, std::size_t e) {
    return std::make_pair(b >= 10 ? b - 10 : 0, std::min<std::size_t>(100, e + 10));
  });
  // 4 consumer chunks of 25: each overlaps its own producer chunk plus
  // one neighbour on each interior side -> 2+3+3+2 = 10 edges.
  EXPECT_EQ(g.edges(), 10u);
  g.run(pool);
  EXPECT_TRUE(halo_ok.load());
}

TEST(TaskGraph, CycleThrowsInsteadOfDeadlocking) {
  ThreadPool pool(2);
  tg::TaskGraph g("test/cycle");
  std::atomic<int> ran{0};
  const tg::TaskId a = g.add("a", [&] { ran.fetch_add(1); });
  const tg::TaskId b = g.add("b", [&] { ran.fetch_add(1); });
  const tg::TaskId c = g.add("c", [&] { ran.fetch_add(1); });
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW(g.run(pool), std::logic_error);
  EXPECT_EQ(ran.load(), 0);  // validation failed before any execution
}

TEST(TaskGraph, SelfEdgeAndBadIdsThrow) {
  tg::TaskGraph g("test/edges");
  const tg::TaskId a = g.add("a", [] {});
  EXPECT_THROW(g.add_edge(a, a), std::logic_error);
  EXPECT_THROW(g.add_edge(a, 42), std::out_of_range);
  EXPECT_THROW(g.add_edge(42, a), std::out_of_range);
}

TEST(TaskGraph, TaskExceptionPropagatesAndSkipsRemainingBodies) {
  ThreadPool pool(2);
  tg::TaskGraph g("test/throw");
  std::atomic<int> ran{0};
  const tg::TaskId a = g.add("a", [&] { ran.fetch_add(1); });
  const tg::TaskId boom = g.add("boom", [] { throw std::runtime_error("task failed"); });
  const tg::TaskId after = g.add("after", [&] { ran.fetch_add(1); });
  g.add_edge(a, boom);
  g.add_edge(boom, after);
  EXPECT_THROW(g.run(pool), std::runtime_error);
  // `after` depends on the failed task: its body must not have run.
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGraph, NestedSubmissionDrainsSeriallyOnCallingThread) {
  // Running a graph from inside a parallel region hits ThreadPool's
  // single-submitter rule: the inner parallel_for falls back to serial,
  // so one drain loop retires the whole DAG on the calling thread —
  // results identical, no deadlock.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.parallel_for(std::size_t{0}, std::size_t{1}, [&](std::size_t, std::size_t, unsigned) {
    tg::TaskGraph g("test/nested");
    auto p1 = g.add_phase("p1", 0, 64, 8, [&](std::size_t b, std::size_t e) {
      done.fetch_add(static_cast<int>(e - b));
    });
    auto p2 = g.add_phase("p2", 0, 64, 8, [&](std::size_t b, std::size_t e) {
      done.fetch_add(static_cast<int>(e - b));
    });
    g.depend_1to1(p1, p2);
    g.run(pool);
  });
  EXPECT_EQ(done.load(), 128);
}

TEST(TaskGraph, EmptyGraphAndEmptyPhaseAreNoOps) {
  ThreadPool pool(2);
  tg::TaskGraph g("test/empty");
  g.run(pool);  // no tasks: returns immediately
  auto p = g.add_phase("none", 7, 7, 4, [](std::size_t, std::size_t) { FAIL(); });
  EXPECT_TRUE(p.tasks.empty());
  g.run(pool);
}

TEST(TaskGraphTrace, GraphSpansReconstructCriticalPath) {
  namespace trace = ookami::trace;
  ThreadPool pool(2);
  trace::clear();
  trace::set_enabled(true);
  tg::TaskGraph g("test/traced");
  auto p1 = g.add_phase("stage1", 0, 4, 2, [](std::size_t, std::size_t) {});
  auto p2 = g.add_phase("stage2", 0, 4, 2, [](std::size_t, std::size_t) {});
  g.depend_1to1(p1, p2);
  g.run(pool);
  trace::set_enabled(false);
  const auto events = trace::collect();
  trace::clear();

  const auto report = trace::aggregate(events, trace::Roofline{"test", 1.0, 1.0});
  ASSERT_EQ(report.graphs.size(), 1u);
  const trace::GraphStats& gs = report.graphs.front();
  EXPECT_EQ(gs.id, g.id());
  EXPECT_EQ(gs.tasks, 4u);
  EXPECT_GT(gs.wall_s, 0.0);
  EXPECT_GT(gs.critical_path_s, 0.0);
  EXPECT_LE(gs.critical_path_s, gs.total_s + 1e-12);
  // The chain walks dep edges backward from the sink: a stage2 task
  // whose critical parent is a stage1 task.
  ASSERT_EQ(gs.critical_path.size(), 2u);
  EXPECT_EQ(gs.critical_path.front().name, "stage1");
  EXPECT_EQ(gs.critical_path.back().name, "stage2");
  const std::string rendered = trace::render_critical_path(gs);
  EXPECT_NE(rendered.find("stage1"), std::string::npos);
  EXPECT_NE(rendered.find("stage2"), std::string::npos);
}

// --- Bit-identity of the workload graph ports -------------------------

namespace {

ookami::lulesh::Outcome sedov(tg::Exec exec, unsigned threads) {
  ookami::lulesh::Options opt;
  opt.edge_elems = 8;
  opt.max_steps = 20;
  opt.variant = ookami::lulesh::Variant::kBase;
  opt.threads = threads;
  opt.exec = exec;
  return ookami::lulesh::run_sedov(opt);
}

bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

}  // namespace

TEST(TaskGraphEquivalence, LuleshGraphBitIdenticalToBarrierAtEveryThreadCount) {
  const auto ref = sedov(tg::Exec::kBarrier, 1);
  ASSERT_TRUE(ref.verified);
  for (const unsigned threads : {1u, 2u, 3u, 4u}) {
    const auto barrier = sedov(tg::Exec::kBarrier, threads);
    const auto graph = sedov(tg::Exec::kGraph, threads);
    EXPECT_TRUE(graph.verified) << "threads=" << threads;
    EXPECT_TRUE(bits_equal(graph.final_origin_energy, ref.final_origin_energy))
        << "threads=" << threads;
    EXPECT_TRUE(bits_equal(graph.final_origin_energy, barrier.final_origin_energy))
        << "threads=" << threads;
    EXPECT_TRUE(bits_equal(graph.total_energy_drift, barrier.total_energy_drift))
        << "threads=" << threads;
    EXPECT_TRUE(bits_equal(graph.symmetry_error, barrier.symmetry_error))
        << "threads=" << threads;
  }
}

TEST(TaskGraphEquivalence, LuleshGraphChunkCountInvariant) {
  const auto ref = sedov(tg::Exec::kBarrier, 2);
  for (const char* chunks : {"1", "3", "16"}) {
    ScopedEnv e("OOKAMI_TASKGRAPH_CHUNKS", chunks);
    const auto graph = sedov(tg::Exec::kGraph, 2);
    EXPECT_TRUE(bits_equal(graph.final_origin_energy, ref.final_origin_energy))
        << "chunks=" << chunks;
  }
}

TEST(TaskGraphEquivalence, NpbSpGraphBitIdenticalToBarrierAtEveryThreadCount) {
  namespace npb = ookami::npb;
  const auto ref = npb::run_sp(npb::Class::kS, 1, tg::Exec::kBarrier);
  ASSERT_TRUE(ref.verified);
  for (const unsigned threads : {1u, 2u, 4u}) {
    const auto graph = npb::run_sp(npb::Class::kS, threads, tg::Exec::kGraph);
    EXPECT_TRUE(graph.verified) << "threads=" << threads;
    EXPECT_TRUE(bits_equal(graph.check_value, ref.check_value)) << "threads=" << threads;
  }
}
