// Message-passing simulator tests: collective semantics against
// sequential references and cost-model properties.

#include <gtest/gtest.h>

#include "ookami/common/rng.hpp"
#include "ookami/netsim/netsim.hpp"

namespace ookami::netsim {
namespace {

std::vector<std::vector<double>> random_buffers(int ranks, std::size_t n, std::uint64_t seed) {
  ookami::Xoshiro256 rng(seed);
  std::vector<std::vector<double>> b(static_cast<std::size_t>(ranks), std::vector<double>(n));
  for (auto& v : b) ookami::fill_uniform(v, -1.0, 1.0, rng);
  return b;
}

class RankCountTest : public ::testing::TestWithParam<int> {};

TEST_P(RankCountTest, BcastReplicatesRootBuffer) {
  const int ranks = GetParam();
  for (int root = 0; root < ranks; root += std::max(1, ranks / 3)) {
    Communicator comm(hdr200(), openmpi_armpl(), ranks);
    auto b = random_buffers(ranks, 37, 17);
    const auto want = b[static_cast<std::size_t>(root)];
    comm.bcast(b, root);
    for (const auto& v : b) EXPECT_EQ(v, want);
  }
}

TEST_P(RankCountTest, AllreduceSumsAcrossRanks) {
  const int ranks = GetParam();
  Communicator comm(hdr200(), fujitsu_mpi(), ranks);
  auto b = random_buffers(ranks, 23, 5);
  std::vector<double> want(23, 0.0);
  for (const auto& v : b) {
    for (std::size_t i = 0; i < want.size(); ++i) want[i] += v[i];
  }
  comm.allreduce_sum(b);
  for (const auto& v : b) {
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_DOUBLE_EQ(v[i], want[i]);
  }
}

TEST_P(RankCountTest, AlltoallTransposesChunks) {
  const int ranks = GetParam();
  const std::size_t chunk = 4;
  Communicator comm(hdr200(), openmpi_armpl(), ranks);
  // buffer[r][s*chunk + c] = r*1000 + s*10 + c (tagged for checking).
  std::vector<std::vector<double>> b(static_cast<std::size_t>(ranks),
                                     std::vector<double>(static_cast<std::size_t>(ranks) * chunk));
  for (int r = 0; r < ranks; ++r) {
    for (int s = 0; s < ranks; ++s) {
      for (std::size_t c = 0; c < chunk; ++c) {
        b[static_cast<std::size_t>(r)][static_cast<std::size_t>(s) * chunk + c] =
            r * 1000.0 + s * 10.0 + static_cast<double>(c);
      }
    }
  }
  comm.alltoall(b, chunk);
  for (int r = 0; r < ranks; ++r) {
    for (int s = 0; s < ranks; ++s) {
      for (std::size_t c = 0; c < chunk; ++c) {
        // After the transpose, rank r's chunk s came from rank s's chunk r.
        EXPECT_EQ(b[static_cast<std::size_t>(r)][static_cast<std::size_t>(s) * chunk + c],
                  s * 1000.0 + r * 10.0 + static_cast<double>(c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCountTest, ::testing::Values(1, 2, 3, 4, 8, 13));

TEST(CostModel, MessageTimeHasLatencyAndBandwidthTerms) {
  const CostModel cm(hdr200(), openmpi_armpl(), 2);
  const double t_small = cm.message_seconds(8);
  const double t_big = cm.message_seconds(1 << 26);
  EXPECT_GT(t_small, 0.0);
  EXPECT_GT(t_big, 100.0 * t_small);  // bandwidth term dominates large messages
}

TEST(CostModel, FujitsuStackIsSlower) {
  const CostModel fj(hdr200(), fujitsu_mpi(), 2);
  const CostModel om(hdr200(), openmpi_armpl(), 2);
  EXPECT_GT(fj.message_seconds(1 << 20), om.message_seconds(1 << 20));
  EXPECT_GT(fj.message_seconds(8), om.message_seconds(8));
}

TEST(CostModel, BcastCostGrowsLogarithmically) {
  auto bcast_cost = [](int ranks) {
    Communicator comm(hdr200(), openmpi_armpl(), ranks);
    auto b = random_buffers(ranks, 1 << 16, 2);
    comm.bcast(b, 0);
    return comm.cost().max_seconds();
  };
  const double c2 = bcast_cost(2);
  const double c16 = bcast_cost(16);
  EXPECT_GT(c16, c2);
  EXPECT_LT(c16, 8.0 * c2);  // log2(16)/log2(2) = 4 rounds, not 8x
}

TEST(CostModel, P2pAdvancesBothEndpoints) {
  CostModel cm(hdr200(), openmpi_armpl(), 3);
  cm.p2p(0, 1, 1024);
  EXPECT_GT(cm.rank_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.rank_seconds(0), cm.rank_seconds(1));
  EXPECT_DOUBLE_EQ(cm.rank_seconds(2), 0.0);
}

TEST(CostModel, RejectsNonPositiveRanks) {
  EXPECT_THROW(CostModel(hdr200(), openmpi_armpl(), 0), std::invalid_argument);
}

// ------------------------------------------------------ delay sampler

TEST(DelaySampler, DeterministicInSeedAndIndex) {
  const DelaySampler a(hdr200(), fujitsu_mpi(), 42);
  const DelaySampler b(hdr200(), fujitsu_mpi(), 42);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(a.sample_seconds(4096, i), b.sample_seconds(4096, i));
  }
  // A different seed produces a different jitter stream.
  const DelaySampler c(hdr200(), fujitsu_mpi(), 43);
  int differing = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (a.sample_seconds(4096, i) != c.sample_seconds(4096, i)) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(DelaySampler, JittersAroundTheCostModelMean) {
  const DelaySampler s(hdr200(), openmpi_armpl(), 7);
  const CostModel cm(hdr200(), openmpi_armpl(), 2);
  EXPECT_DOUBLE_EQ(s.mean_seconds(65536), cm.message_seconds(65536));

  double sum = 0.0;
  const int kSamples = 4096;
  for (int i = 0; i < kSamples; ++i) {
    const double d = s.sample_seconds(65536, static_cast<std::uint64_t>(i));
    EXPECT_GT(d, 0.0);  // multiplicative jitter can never go negative
    sum += d;
  }
  // Lognormal-ish multiplicative jitter: the sample mean lands within a
  // modest factor of the model mean (exp(sigma^2/2) bias ~ 5%).
  const double mean = sum / kSamples;
  EXPECT_GT(mean, 0.5 * s.mean_seconds(65536));
  EXPECT_LT(mean, 2.0 * s.mean_seconds(65536));
}

TEST(DelaySampler, ZeroSigmaIsExactlyTheMean) {
  const DelaySampler s(hdr200(), fujitsu_mpi(), 1, 0.0);
  EXPECT_DOUBLE_EQ(s.sample_seconds(1024, 0), s.mean_seconds(1024));
  EXPECT_DOUBLE_EQ(s.sample_seconds(1024, 99), s.mean_seconds(1024));
}

TEST(DelaySampler, NamedProfilesResolveAndUnknownThrows) {
  const DelaySampler fj = delay_profile("hdr200-fujitsu", 5);
  const DelaySampler om = delay_profile("hdr200-openmpi", 5);
  // The Fujitsu stack is the slower pairing at every size (paper's
  // Fig. 9 speculation encoded in the stack parameters).
  EXPECT_GT(fj.mean_seconds(1 << 20), om.mean_seconds(1 << 20));
  EXPECT_GT(fj.mean_seconds(0), om.mean_seconds(0));
  EXPECT_THROW(delay_profile("hdr100-mpich", 5), std::invalid_argument);
}

}  // namespace
}  // namespace ookami::netsim
