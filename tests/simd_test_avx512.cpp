// AVX-512 instantiations of the shared simd check bodies.  This TU is
// compiled with -mavx512f/-mavx512dq (see ookami_add_avx512_kernel in
// tests/CMakeLists.txt) so the avx512 batch specializations exist here;
// simd_test.cpp only calls these after backend_supported(kAvx512).

#include "simd_test_checks.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

namespace ookami::simd::testing {

void avx512_batch_matches_scalar() { expect_batch_matches_scalar<arch::avx512>(); }
void avx512_whilelt_and_tail() { expect_whilelt_and_tail<arch::avx512>(); }
void avx512_gather_scatter_edges() { expect_gather_scatter_edges<arch::avx512>(); }
void avx512_fexpa_bit_identical() { expect_fexpa_bit_identical<arch::avx512>(); }
void avx512_estimates_bit_identical() { expect_estimates_bit_identical<arch::avx512>(); }

}  // namespace ookami::simd::testing

#endif
