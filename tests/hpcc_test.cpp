// HPCC substrate tests: DGEMM tiers vs the naive oracle, HPL residuals,
// FFT vs the direct DFT plus round-trip/Parseval properties, and the
// Figure 8/9 projection tables.

#include <gtest/gtest.h>

#include <cmath>

#include "ookami/common/rng.hpp"
#include "ookami/hpcc/hpcc.hpp"

namespace ookami::hpcc {
namespace {

// --- DGEMM -------------------------------------------------------------------

class GemmTest : public ::testing::TestWithParam<std::tuple<GemmImpl, std::size_t>> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [impl, n] = GetParam();
  EXPECT_LE(dgemm_check(impl, n, 3), 1e-11 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    ImplsAndSizes, GemmTest,
    ::testing::Combine(::testing::Values(GemmImpl::kBlocked, GemmImpl::kTuned),
                       ::testing::Values(17, 64, 100, 192)));

// --- HPL ---------------------------------------------------------------------

class HplTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HplTest, ResidualPassesHplCheck) {
  const HplResult r = hpl_solve(GetParam(), 32, 3);
  EXPECT_TRUE(r.verified) << "scaled residual " << r.residual_norm;
  EXPECT_LT(r.residual_norm, 16.0);
  EXPECT_GT(r.gflops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HplTest, ::testing::Values(33, 64, 150, 256));

TEST(Hpl, BlockSizeDoesNotChangeSolution) {
  const HplResult a = hpl_solve(100, 8, 2, 7);
  const HplResult b = hpl_solve(100, 100, 2, 7);
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);
}

// --- FFT ---------------------------------------------------------------------

TEST(Fft, MatchesDirectDft) {
  ThreadPool pool(2);
  Xoshiro256 rng(3);
  std::vector<cplx> data(64);
  for (auto& v : data) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const auto want = dft_reference(data, false);
  auto got = data;
  fft(got, false, pool);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-10) << i;
  }
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, RoundTripIsIdentity) {
  ThreadPool pool(3);
  Xoshiro256 rng(5);
  std::vector<cplx> data(GetParam());
  for (auto& v : data) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  auto work = data;
  fft(work, false, pool);
  fft(work, true, pool);
  double worst = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) worst = std::max(worst, std::abs(work[i] - data[i]));
  EXPECT_LT(worst, 1e-12 * std::log2(static_cast<double>(GetParam())) + 1e-13);
}

TEST_P(FftSizeTest, ParsevalHolds) {
  ThreadPool pool(1);
  Xoshiro256 rng(6);
  std::vector<cplx> data(GetParam());
  for (auto& v : data) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  double time_energy = 0.0;
  for (const auto& v : data) time_energy += std::norm(v);
  fft(data, false, pool);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(GetParam()) / time_energy, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftSizeTest, ::testing::Values(2, 8, 64, 1024, 16384));

TEST(Fft, RejectsNonPowerOfTwo) {
  ThreadPool pool(1);
  std::vector<cplx> data(100);
  EXPECT_THROW(fft(data, false, pool), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToConstant) {
  ThreadPool pool(1);
  std::vector<cplx> data(16, cplx(0.0, 0.0));
  data[0] = 1.0;
  fft(data, false, pool);
  for (const auto& v : data) EXPECT_NEAR(std::abs(v - cplx(1.0, 0.0)), 0.0, 1e-14);
}

// --- Figure 8/9 projections ----------------------------------------------------

TEST(Fig8, AnchoredFractions) {
  const auto pts = fig8_dgemm_points();
  auto find = [&](const std::string& sys, const std::string& lib) {
    for (const auto& p : pts) {
      if (p.system == sys && p.library == lib) return p;
    }
    ADD_FAILURE() << sys << "/" << lib << " missing";
    return LibraryPoint{};
  };
  // Paper-anchored: A64FX DGEMM 71%, SKX 97%, KNL 11%, Fujitsu/OpenBLAS ~14x.
  EXPECT_DOUBLE_EQ(find("Ookami", "fujitsu-blas").fraction_of_peak, 0.71);
  EXPECT_DOUBLE_EQ(find("Stampede2-SKX", "mkl").fraction_of_peak, 0.97);
  EXPECT_DOUBLE_EQ(find("Stampede2-KNL", "mkl").fraction_of_peak, 0.11);
  const double ratio = find("Ookami", "fujitsu-blas").fraction_of_peak /
                       find("Ookami", "openblas").fraction_of_peak;
  EXPECT_NEAR(ratio, 14.0, 1.0);
  // Per-core: A64FX ~ SKX and ~1.6x Zen2 (paper's summary).
  const double a64 = point_gflops_per_core(find("Ookami", "fujitsu-blas"));
  const double skx = point_gflops_per_core(find("Stampede2-SKX", "mkl"));
  const double zen = point_gflops_per_core(find("Bridges2-Zen2", "blis"));
  EXPECT_NEAR(a64 / skx, 1.0, 0.15);
  EXPECT_NEAR(a64 / zen, 1.6, 0.25);
}

TEST(Fig9, HplOpenBlasRatio) {
  const auto pts = fig9a_hpl_points();
  double fj = 0.0, ob = 0.0;
  for (const auto& p : pts) {
    if (p.system == "Ookami" && p.library == "fujitsu-blas") fj = p.fraction_of_peak;
    if (p.system == "Ookami" && p.library == "openblas") ob = p.fraction_of_peak;
  }
  EXPECT_NEAR(fj / ob, 10.0, 1.0);  // paper: "nearly ten times faster"
}

TEST(Fig9, FftwRatio) {
  const auto pts = fig9c_fft_points();
  double fj = 0.0, fw = 0.0;
  for (const auto& p : pts) {
    if (p.system == "Ookami" && p.library == "fujitsu-fftw") fj = p.fraction_of_peak;
    if (p.system == "Ookami" && p.library == "fftw") fw = p.fraction_of_peak;
  }
  EXPECT_NEAR(fj / fw, 4.2, 0.3);  // paper: "4.2 times faster"
}

TEST(Fig9B, FujitsuMpiScalesWorseThanOpenmpi) {
  LibraryPoint fj{"Ookami", "fujitsu-blas", 0.58};
  for (int nodes : {2, 4, 8}) {
    const double f = hpl_multinode_gflops(fj, netsim::fujitsu_mpi(), nodes);
    const double o = hpl_multinode_gflops(fj, netsim::openmpi_armpl(), nodes);
    EXPECT_LT(f, o) << nodes << " nodes";
  }
  // Single node: identical (no communication).
  EXPECT_DOUBLE_EQ(hpl_multinode_gflops(fj, netsim::fujitsu_mpi(), 1),
                   hpl_multinode_gflops(fj, netsim::openmpi_armpl(), 1));
}

TEST(Fig9B, ParallelEfficiencyDeclines) {
  LibraryPoint fj{"Ookami", "fujitsu-blas", 0.58};
  const double g1 = hpl_multinode_gflops(fj, netsim::fujitsu_mpi(), 1);
  const double g8 = hpl_multinode_gflops(fj, netsim::fujitsu_mpi(), 8);
  EXPECT_GT(g8, g1);            // still faster in aggregate
  EXPECT_LT(g8, 8.0 * g1);      // but below ideal speedup
  EXPECT_LT(g8 / (8.0 * g1), 0.7);  // "does not scale well"
}

TEST(Fig9D, FftMultinodeIsFlat) {
  LibraryPoint fj{"Ookami", "fujitsu-fftw", 0.022};
  const double g1 = fft_multinode_gflops(fj, netsim::fujitsu_mpi(), 1);
  const double g8 = fft_multinode_gflops(fj, netsim::fujitsu_mpi(), 8);
  // The paper calls multi-node FFT "relatively flat": well below 3x at 8 nodes.
  EXPECT_LT(g8 / g1, 3.0);
}

}  // namespace
}  // namespace ookami::hpcc
