// Executable loop-suite tests: every kernel's SVE-emulation path is
// checked against its scalar reference, parameterized over kind, size
// and seed.

#include <gtest/gtest.h>

#include "ookami/loops/kernels.hpp"

namespace ookami::loops {
namespace {

class LoopKindTest : public ::testing::TestWithParam<LoopKind> {};

TEST_P(LoopKindTest, SveMatchesScalarWithinUlps) {
  const LoopKind kind = GetParam();
  // pow composes exp(y log x): allow its wider envelope; everything
  // else must be a handful of ulps or exact.
  const double bound = kind == LoopKind::kPow ? 2048.0
                       : kind == LoopKind::kSin || kind == LoopKind::kExp ? 8.0
                                                                          : 1.0;
  EXPECT_LE(max_ulp_scalar_vs_sve(kind), bound) << loop_name(kind);
}

TEST_P(LoopKindTest, OddSizesExerciseTailPredicates) {
  const LoopKind kind = GetParam();
  const double bound = kind == LoopKind::kPow ? 2048.0 : 8.0;
  for (std::size_t n : {1ul, 7ul, 8ul, 9ul, 63ul, 100ul}) {
    EXPECT_LE(max_ulp_scalar_vs_sve(kind, n, 13), bound)
        << loop_name(kind) << " n=" << n;
  }
}

TEST_P(LoopKindTest, SpecIsSelfConsistent) {
  const KernelSpec s = kernel_spec(GetParam());
  EXPECT_EQ(s.kind, GetParam());
  // Every kernel moves data.
  EXPECT_GT(s.loads + s.stores + s.gather + s.scatter + s.pred_stores, 0.0);
  // Math kernels have exactly one call per element.
  if (s.math != MathFn::kNone) EXPECT_EQ(s.math_calls, 1.0);
  // Windowed flag only on the short variants.
  const bool is_short =
      GetParam() == LoopKind::kShortGather || GetParam() == LoopKind::kShortScatter;
  EXPECT_EQ(s.windowed_128, is_short);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LoopKindTest, ::testing::ValuesIn(all_loop_kinds()),
                         [](const auto& info) {
                           auto n = loop_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(LoopData, ShortVariantsUse128ByteWindows) {
  const LoopData d = make_loop_data(LoopKind::kShortGather, 256);
  for (std::size_t i = 0; i < d.index.size(); ++i) {
    EXPECT_EQ(i / 16, d.index[i] / 16) << "16 doubles = 128 bytes";
  }
}

TEST(LoopData, GatherUsesFullPermutation) {
  const LoopData d = make_loop_data(LoopKind::kGather, 256);
  bool crosses_window = false;
  for (std::size_t i = 0; i < d.index.size(); ++i) {
    if (i / 16 != d.index[i] / 16) crosses_window = true;
  }
  EXPECT_TRUE(crosses_window);
}

TEST(LoopData, L1SizingRule) {
  // x and y together fill the 64 KB A64FX L1.
  EXPECT_EQ(kL1Elems * sizeof(double) * 2, 64u * 1024u);
}

TEST(LoopSuite, FigureOrderingsAreStable) {
  const auto fig1 = fig1_loop_kinds();
  const auto fig2 = fig2_loop_kinds();
  EXPECT_EQ(fig1.size(), 6u);
  EXPECT_EQ(fig2.size(), 5u);
  EXPECT_EQ(all_loop_kinds().size(), 11u);
  EXPECT_EQ(loop_name(fig1.front()), "simple");
  EXPECT_EQ(loop_name(fig2.back()), "pow");
}

}  // namespace
}  // namespace ookami::loops
