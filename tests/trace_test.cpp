// Tests for the src/trace subsystem: recording semantics (nesting,
// multi-thread ordering, disabled-mode inertness, buffer caps), the
// exclusive-time aggregation math, roofline verdicts, and the Chrome
// trace-event export round-tripped through the harness JSON parser.

#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <thread>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "ookami/common/threadpool.hpp"
#include "ookami/harness/json.hpp"
#include "ookami/harness/profile.hpp"
#include "ookami/trace/aggregate.hpp"
#include "ookami/trace/export.hpp"
#include "ookami/trace/flight.hpp"
#include "ookami/trace/trace.hpp"

namespace ookami::trace {
namespace {

/// Every test runs against global trace state; reset around each.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    clear();
  }
  void TearDown() override {
    set_enabled(false);
    clear();
    set_thread_capacity(1 << 20);
  }
};

void spin_ns(std::uint64_t ns) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() < static_cast<std::int64_t>(ns)) {
  }
}

Roofline test_roofline() { return {"test", 100.0, 10.0}; }  // balance = 10 flop/B

Event make_event(const char* name, std::uint64_t start, std::uint64_t end, std::uint32_t tid,
                 std::int32_t depth, double bytes = 0.0, double flops = 0.0) {
  Event e;
  e.name = name;
  e.start_ns = start;
  e.end_ns = end;
  e.tid = tid;
  e.depth = depth;
  e.bytes = bytes;
  e.flops = flops;
  return e;
}

TEST_F(TraceTest, RecordsNestedScopesWithDepths) {
  {
    OOKAMI_TRACE_SCOPE("outer");
    spin_ns(50000);
    {
      OOKAMI_TRACE_SCOPE("inner");
      spin_ns(50000);
    }
  }
  const auto events = collect();
  ASSERT_EQ(events.size(), 2u);
  // Push-at-end order: the child is recorded before its parent.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Proper nesting: inner lives inside outer.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].end_ns, events[1].end_ns);
}

TEST_F(TraceTest, ClearDropsEventsAndKeepsRecording) {
  { OOKAMI_TRACE_SCOPE("a"); }
  ASSERT_EQ(collect().size(), 1u);
  clear();
  EXPECT_TRUE(collect().empty());
  { OOKAMI_TRACE_SCOPE("b"); }
  EXPECT_EQ(collect().size(), 1u);
}

TEST_F(TraceTest, DisabledScopesRecordNothingAndTouchNoBuffers) {
  set_enabled(false);
  clear();
  const std::size_t threads_before = thread_count();
  // A brand-new thread tracing while disabled must not even create its
  // buffer (constraint #1: disabled cost is one relaxed load).
  std::thread t([] {
    for (int i = 0; i < 1000; ++i) {
      OOKAMI_TRACE_SCOPE("ignored");
    }
  });
  t.join();
  EXPECT_TRUE(collect().empty());
  EXPECT_EQ(thread_count(), threads_before);
  EXPECT_EQ(dropped(), 0u);
}

TEST_F(TraceTest, ScopesOpenAcrossDisableStayBalanced) {
  {
    OOKAMI_TRACE_SCOPE("open-while-disabling");
    set_enabled(false);
  }  // closes after the flip: must still record (it saw enabled=true)
  const auto events = collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "open-while-disabling");
}

TEST_F(TraceTest, PerThreadCapacityDropsAndCounts) {
  set_thread_capacity(4);
  for (int i = 0; i < 10; ++i) {
    OOKAMI_TRACE_SCOPE("capped");
  }
  EXPECT_EQ(collect().size(), 4u);
  EXPECT_EQ(dropped(), 6u);
  clear();
  EXPECT_EQ(dropped(), 0u);
}

TEST_F(TraceTest, MultiThreadEventsGroupByTidInEndOrder) {
  ThreadPool pool(4);
  pool.parallel_for(0, 64, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) {
      OOKAMI_TRACE_SCOPE("mt/work");
      spin_ns(1000);
    }
  });
  const auto events = collect();
  // 64 work scopes + up to 4 pool/worker spans + 1 pool/parallel_for.
  ASSERT_GE(events.size(), 64u);
  EXPECT_GE(thread_count(), 2u);
  // collect() contract: tid groups ascending, end_ns ascending inside.
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].tid == events[i - 1].tid) {
      EXPECT_GE(events[i].end_ns, events[i - 1].end_ns);
    } else {
      EXPECT_GT(events[i].tid, events[i - 1].tid);
    }
  }
  // The fork span and worker spans exist.
  const auto report = aggregate(events, test_roofline());
  const RegionStats* fork = nullptr;
  const RegionStats* work = nullptr;
  for (const auto& r : report.regions) {
    if (r.name == "pool/parallel_for") fork = &r;
    if (r.name == "mt/work") work = &r;
  }
  ASSERT_NE(fork, nullptr);
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->count, 64u);
  EXPECT_GE(work->threads, 2u);
}

TEST_F(TraceTest, ExclusiveTimeSubtractsChildTime) {
  // parent [0, 100]; children [10, 30] and [40, 80]; grandchild [45, 55].
  const std::vector<Event> events = {
      make_event("parent", 0, 100, 0, 0),
      make_event("child", 10, 30, 0, 1),
      make_event("child", 40, 80, 0, 1),
      make_event("grandchild", 45, 55, 0, 2),
  };
  const Report report = aggregate(events, test_roofline());
  ASSERT_EQ(report.regions.size(), 3u);
  const auto find = [&](const std::string& n) -> const RegionStats& {
    for (const auto& r : report.regions) {
      if (r.name == n) return r;
    }
    ADD_FAILURE() << "missing region " << n;
    static RegionStats dummy;
    return dummy;
  };
  const auto& parent = find("parent");
  EXPECT_DOUBLE_EQ(parent.inclusive_s, 100e-9);
  EXPECT_DOUBLE_EQ(parent.exclusive_s, 40e-9);  // 100 - (20 + 40)
  const auto& child = find("child");
  EXPECT_EQ(child.count, 2u);
  EXPECT_DOUBLE_EQ(child.inclusive_s, 60e-9);
  EXPECT_DOUBLE_EQ(child.exclusive_s, 50e-9);  // 60 - grandchild's 10
  EXPECT_DOUBLE_EQ(child.min_s, 20e-9);
  EXPECT_DOUBLE_EQ(child.max_s, 40e-9);
  const auto& grand = find("grandchild");
  EXPECT_DOUBLE_EQ(grand.exclusive_s, grand.inclusive_s);
  // Regions come sorted by exclusive time, descending.
  EXPECT_GE(report.regions[0].exclusive_s, report.regions[1].exclusive_s);
  EXPECT_GE(report.regions[1].exclusive_s, report.regions[2].exclusive_s);
  EXPECT_DOUBLE_EQ(report.wall_s, 100e-9);
}

TEST_F(TraceTest, ExclusiveTimeIsPerThread) {
  // Two threads, same region name, overlapping wall-clock intervals:
  // child time must only be charged within its own thread.
  const std::vector<Event> events = {
      make_event("r", 0, 100, 0, 0),
      make_event("r", 0, 100, 1, 0),
      make_event("c", 20, 60, 1, 1),
  };
  const Report report = aggregate(events, test_roofline());
  const auto& r = report.regions;
  ASSERT_EQ(r.size(), 2u);
  // "r": 200 inclusive, minus the 40 of "c" on thread 1 only.
  EXPECT_EQ(r[0].name, "r");
  EXPECT_DOUBLE_EQ(r[0].inclusive_s, 200e-9);
  EXPECT_DOUBLE_EQ(r[0].exclusive_s, 160e-9);
  EXPECT_EQ(r[0].threads, 2u);
}

TEST_F(TraceTest, RooflineVerdictsFollowMachineBalance) {
  // balance = 10 flop/B: intensity 2 -> memory, intensity 50 -> compute.
  const std::vector<Event> events = {
      make_event("mem", 0, 1000, 0, 0, /*bytes=*/1000.0, /*flops=*/2000.0),
      make_event("cpu", 1000, 2000, 0, 0, /*bytes=*/100.0, /*flops=*/5000.0),
      make_event("bytes-only", 2000, 3000, 0, 0, /*bytes=*/512.0),
      make_event("flops-only", 3000, 4000, 0, 0, 0.0, /*flops=*/64.0),
      make_event("plain", 4000, 5000, 0, 0),
  };
  const Report report = aggregate(events, test_roofline());
  const auto verdict = [&](const std::string& n) {
    for (const auto& r : report.regions) {
      if (r.name == n) return r.bound;
    }
    return Bound::kUnknown;
  };
  EXPECT_EQ(verdict("mem"), Bound::kMemory);
  EXPECT_EQ(verdict("cpu"), Bound::kCompute);
  EXPECT_EQ(verdict("bytes-only"), Bound::kMemory);
  EXPECT_EQ(verdict("flops-only"), Bound::kCompute);
  EXPECT_EQ(verdict("plain"), Bound::kUnknown);
  // Achieved rates are charged to exclusive time: 2000 flop / 1 us.
  for (const auto& r : report.regions) {
    if (r.name == "mem") {
      EXPECT_NEAR(r.intensity, 2.0, 1e-12);
      EXPECT_NEAR(r.gflops, 2.0, 1e-9);
      EXPECT_NEAR(r.gbs, 1.0, 1e-9);
    }
  }
  // The rendered table names the regions and verdicts.
  const std::string text = render(report);
  EXPECT_NE(text.find("mem"), std::string::npos);
  EXPECT_NE(text.find("memory"), std::string::npos);
  EXPECT_NE(text.find("compute"), std::string::npos);
}

TEST_F(TraceTest, RenderHonoursTopN) {
  std::vector<Event> events;
  for (int i = 0; i < 8; ++i) {
    static const char* kNames[8] = {"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"};
    events.push_back(make_event(kNames[i], 0, 100, static_cast<std::uint32_t>(i), 0));
  }
  const Report report = aggregate(events, test_roofline());
  const std::string all = render(report);
  const std::string top2 = render(report, 2);
  EXPECT_NE(all.find("r7"), std::string::npos);
  EXPECT_LT(top2.size(), all.size());
}

TEST_F(TraceTest, ChromeJsonRoundTripsThroughHarnessParser) {
  {
    OOKAMI_TRACE_SCOPE_IO("rt/outer", 4096.0, 1.0e6);
    spin_ns(200000);
    {
      OOKAMI_TRACE_SCOPE("rt/inner");
      spin_ns(200000);
    }
  }
  const auto original = collect();
  ASSERT_EQ(original.size(), 2u);
  const std::string json_text = to_chrome_json(original);

  // Parse with the harness's own JSON parser — the validity check the
  // acceptance criteria ask for.
  const auto doc = harness::json::Value::parse(json_text);
  ASSERT_TRUE(doc.is_object());
  const auto* arr = doc.find("traceEvents");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->size(), 2u);
  for (const auto& e : arr->items()) {
    EXPECT_EQ(e.string_or("ph", ""), "X");
    EXPECT_EQ(e.string_or("cat", ""), "ookami");
    EXPECT_TRUE(e.contains("ts"));
    EXPECT_TRUE(e.contains("dur"));
  }

  std::deque<std::string> names;
  const auto reparsed = harness::events_from_chrome(doc, names);
  ASSERT_EQ(reparsed.size(), original.size());

  const Report before = aggregate(original, test_roofline());
  const Report after = aggregate(reparsed, test_roofline());
  ASSERT_EQ(before.regions.size(), after.regions.size());
  for (std::size_t i = 0; i < before.regions.size(); ++i) {
    EXPECT_EQ(before.regions[i].name, after.regions[i].name);
    EXPECT_EQ(before.regions[i].count, after.regions[i].count);
    // Chrome stores microseconds: round-trip is lossy below 1 us.
    EXPECT_NEAR(before.regions[i].inclusive_s, after.regions[i].inclusive_s, 2e-6);
    EXPECT_NEAR(before.regions[i].exclusive_s, after.regions[i].exclusive_s, 4e-6);
    EXPECT_DOUBLE_EQ(before.regions[i].bytes, after.regions[i].bytes);
    EXPECT_DOUBLE_EQ(before.regions[i].flops, after.regions[i].flops);
  }
}

TEST_F(TraceTest, ChromeDepthReconstructionFromContainment) {
  // A foreign trace without args.depth: nesting must be rebuilt from
  // interval containment per tid.
  const std::string text = R"({"traceEvents": [
    {"name": "outer", "ph": "X", "ts": 0, "dur": 100, "tid": 1},
    {"name": "inner", "ph": "X", "ts": 10, "dur": 50, "tid": 1},
    {"name": "later", "ph": "X", "ts": 70, "dur": 20, "tid": 1},
    {"name": "other-thread", "ph": "X", "ts": 20, "dur": 10, "tid": 2},
    {"name": "ignored-meta", "ph": "M", "ts": 0}
  ]})";
  std::deque<std::string> names;
  const auto events = harness::events_from_chrome(harness::json::Value::parse(text), names);
  ASSERT_EQ(events.size(), 4u);  // the ph:"M" event is skipped
  const auto depth_of = [&](const std::string& n) {
    for (const auto& e : events) {
      if (n == e.name) return e.depth;
    }
    return -99;
  };
  EXPECT_EQ(depth_of("outer"), 0);
  EXPECT_EQ(depth_of("inner"), 1);
  EXPECT_EQ(depth_of("later"), 1);
  EXPECT_EQ(depth_of("other-thread"), 0);

  const Report report = aggregate(events, test_roofline());
  for (const auto& r : report.regions) {
    if (r.name == "outer") {
      // 100 us minus the 50 us inner and 20 us later children.
      EXPECT_NEAR(r.exclusive_s, 30e-6, 1e-12);
    }
  }
}

TEST_F(TraceTest, ProfileJsonCarriesRegionsAndVerdicts) {
  {
    OOKAMI_TRACE_SCOPE_IO("pj/kernel", 1.0e6, 1.0e5);  // 0.1 flop/B: memory
    spin_ns(100000);
  }
  const Report report = aggregate(collect(), harness::roofline_for("a64fx"), dropped());
  const auto profile = harness::profile_to_json(report);
  ASSERT_TRUE(profile.is_object());
  EXPECT_EQ(profile.string_or("machine", ""), "a64fx");
  EXPECT_GT(profile.number_or("peak_gflops", 0.0), 0.0);
  const auto* regions = profile.find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_EQ(regions->size(), 1u);
  const auto& r = regions->items()[0];
  EXPECT_EQ(r.string_or("name", ""), "pj/kernel");
  EXPECT_EQ(r.string_or("verdict", ""), "memory-bound");
  EXPECT_EQ(r.number_or("count", 0.0), 1.0);
  EXPECT_GT(r.number_or("exclusive_s", 0.0), 0.0);
}

struct HookLog {
  std::vector<std::string> begins;
  std::vector<std::string> ends;
};

TEST_F(TraceTest, ScopeHooksFireAroundEveryScope) {
  HookLog log;
  ScopeHooks hooks;
  hooks.on_begin = [](void* ctx, const char* name) {
    static_cast<HookLog*>(ctx)->begins.emplace_back(name);
  };
  hooks.on_end = [](void* ctx, const char* name) {
    static_cast<HookLog*>(ctx)->ends.emplace_back(name);
  };
  hooks.ctx = &log;
  set_scope_hooks(&hooks);
  {
    OOKAMI_TRACE_SCOPE("hk/outer");
    {
      OOKAMI_TRACE_SCOPE("hk/inner");
    }
  }
  set_scope_hooks(nullptr);
  { OOKAMI_TRACE_SCOPE("hk/after-removal"); }

  ASSERT_EQ(log.begins.size(), 2u);
  ASSERT_EQ(log.ends.size(), 2u);
  EXPECT_EQ(log.begins[0], "hk/outer");
  EXPECT_EQ(log.begins[1], "hk/inner");
  // Ends fire in unwind order: inner closes first.
  EXPECT_EQ(log.ends[0], "hk/inner");
  EXPECT_EQ(log.ends[1], "hk/outer");
  // The scopes themselves still recorded normally.
  EXPECT_EQ(collect().size(), 3u);
}

TEST_F(TraceTest, ScopeHooksAreSilentWhileTracingDisabled) {
  HookLog log;
  ScopeHooks hooks;
  hooks.on_begin = [](void* ctx, const char* name) {
    static_cast<HookLog*>(ctx)->begins.emplace_back(name);
  };
  hooks.on_end = [](void* ctx, const char* name) {
    static_cast<HookLog*>(ctx)->ends.emplace_back(name);
  };
  hooks.ctx = &log;
  set_scope_hooks(&hooks);
  set_enabled(false);
  { OOKAMI_TRACE_SCOPE("hk/disabled"); }
  set_scope_hooks(nullptr);
  EXPECT_TRUE(log.begins.empty());
  EXPECT_TRUE(log.ends.empty());
}

TEST_F(TraceTest, ScopeHookTimeIsExcludedFromRegionWallTime) {
  // The begin hook runs before the start timestamp and the end hook
  // after the end timestamp, so hook cost never inflates region time.
  ScopeHooks hooks;
  hooks.on_begin = [](void*, const char*) { spin_ns(200000); };
  hooks.on_end = [](void*, const char*) { spin_ns(200000); };
  set_scope_hooks(&hooks);
  {
    OOKAMI_TRACE_SCOPE("hk/timed");
    spin_ns(50000);
  }
  set_scope_hooks(nullptr);
  const auto events = collect();
  ASSERT_EQ(events.size(), 1u);
  // 50 us of body; 400 us of hooks must not be charged to it.
  EXPECT_LT(events[0].seconds(), 200e-6);
}

TEST_F(TraceTest, RooflineForRejectsUnknownMachine) {
  EXPECT_THROW(harness::roofline_for("cray-1"), std::invalid_argument);
  const auto a64fx = harness::roofline_for("a64fx");
  EXPECT_GT(a64fx.balance(), 0.0);
}

TEST_F(TraceTest, RecordSpanInjectsCompletedEvents) {
  // A span that started "elsewhere" (another thread's timestamp) is
  // recorded with the caller-supplied interval, not the call time.
  const std::uint64_t start = now_ns();
  spin_ns(100000);
  const std::uint64_t end = now_ns();
  record_span("serve/queue", start, end, 64.0, 0.0);
  { OOKAMI_TRACE_SCOPE("anchor"); }

  const auto events = collect();
  ASSERT_EQ(events.size(), 2u);
  const Event& span = events[0];
  EXPECT_STREQ(span.name, "serve/queue");
  EXPECT_EQ(span.start_ns, start);
  EXPECT_EQ(span.end_ns, end);
  EXPECT_DOUBLE_EQ(span.bytes, 64.0);
  // Cross-thread pattern: the executor records a span whose start was
  // stamped by a connection thread.
  std::uint64_t other_start = 0;
  std::thread t([&] { other_start = now_ns(); });
  t.join();
  record_span("cross", other_start, now_ns());
  const auto again = collect();
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[2].start_ns, other_start);
}

TEST_F(TraceTest, RecordSpanDisabledModeIsInert) {
  set_enabled(false);
  const std::size_t threads_before = thread_count();
  record_span("nope", 0, 100);
  set_enabled(true);
  EXPECT_TRUE(collect().empty());
  EXPECT_EQ(thread_count(), threads_before);
}

TEST_F(TraceTest, RecordSpanHonorsBufferCap) {
  set_thread_capacity(2);
  clear();
  record_span("a", 0, 1);
  record_span("b", 1, 2);
  record_span("c", 2, 3);  // over cap: dropped, counted
  EXPECT_EQ(collect().size(), 2u);
  EXPECT_EQ(dropped(), 1u);
}

TEST_F(TraceTest, RecordSpanCarriesRequestIdThroughChromeExport) {
  record_span("serve/queue", 100, 200, 0.0, 0.0, 0xabcdef12u);
  { OOKAMI_TRACE_SCOPE("anchor"); }
  const auto events = collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].injected);
  EXPECT_EQ(events[0].req, 0xabcdef12u);

  // Round-trip: the hex "req" arg must survive the JSON double funnel.
  const std::string chrome = to_chrome_json(events);
  std::deque<std::string> names;
  const auto parsed = ookami::harness::events_from_chrome(
      ookami::harness::json::Value::parse(chrome), names);
  ASSERT_EQ(parsed.size(), 2u);
  bool found = false;
  for (const auto& e : parsed) {
    if (e.injected) {
      EXPECT_EQ(e.req, 0xabcdef12u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, AggregateSeparatesInjectedSpansFromRegions) {
  // Two spans overlapping a region at the same depth: grouping them
  // into the exclusive-time replay would corrupt it, so they must land
  // in Report::spans and leave the region untouched.
  std::vector<Event> events;
  events.push_back(make_event("region", 0, 1000, 1, 0));
  Event s1 = make_event("serve/queue", 0, 600, 1, 0);
  s1.injected = true;
  s1.req = 7;
  Event s2 = make_event("serve/queue", 100, 900, 2, 0);
  s2.injected = true;
  s2.req = 8;
  events.push_back(s1);
  events.push_back(s2);

  const Report report = aggregate(events, test_roofline());
  ASSERT_EQ(report.regions.size(), 1u);
  EXPECT_EQ(report.regions[0].name, "region");
  EXPECT_DOUBLE_EQ(report.regions[0].exclusive_s, 1000e-9);
  ASSERT_EQ(report.spans.size(), 1u);
  EXPECT_EQ(report.spans[0].name, "serve/queue");
  EXPECT_EQ(report.spans[0].count, 2u);
  EXPECT_EQ(report.spans[0].requests, 2u);
  EXPECT_EQ(report.spans[0].threads, 2u);
  EXPECT_DOUBLE_EQ(report.spans[0].total_s, 1400e-9);

  const std::string table = render(report);
  EXPECT_NE(table.find("injected spans"), std::string::npos);
  EXPECT_NE(table.find("serve/queue"), std::string::npos);
}

TEST_F(TraceTest, AggregateHandlesSpanOnlyTraces) {
  std::vector<Event> events;
  Event s = make_event("serve/kernel", 10, 20, 1, 0);
  s.injected = true;
  events.push_back(s);
  const Report report = aggregate(events, test_roofline());
  EXPECT_TRUE(report.regions.empty());
  ASSERT_EQ(report.spans.size(), 1u);
  EXPECT_EQ(report.spans[0].count, 1u);
}

// ---------------------------------------------------- flight recorder

TEST(FlightRecorder, RecordsAndSnapshotsInOrder) {
  FlightRecorder fr(64);
  EXPECT_EQ(fr.capacity(), 64u);
  fr.record(FlightKind::kSpan, "a", 1, 100, 200, 3.0);
  fr.record(FlightKind::kRequest, "b", 2, 300, 300);
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_STREQ(snap[0].name, "a");
  EXPECT_EQ(snap[0].kind, FlightKind::kSpan);
  EXPECT_EQ(snap[0].req, 1u);
  EXPECT_EQ(snap[0].start_ns, 100u);
  EXPECT_EQ(snap[0].end_ns, 200u);
  EXPECT_DOUBLE_EQ(snap[0].value, 3.0);
  EXPECT_STREQ(snap[1].name, "b");
  EXPECT_EQ(fr.recorded(), 2u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder fr(100);
  EXPECT_EQ(fr.capacity(), 128u);
  FlightRecorder tiny(1);
  EXPECT_EQ(tiny.capacity(), 64u);  // floor
}

TEST(FlightRecorder, OverwritesOldestKeepsNewest) {
  FlightRecorder fr(64);
  for (std::uint64_t i = 0; i < 200; ++i) {
    fr.record(FlightKind::kMark, "tick", i, i, i);
  }
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 64u);
  // Newest 64, oldest first: reqs 136..199.
  EXPECT_EQ(snap.front().req, 136u);
  EXPECT_EQ(snap.back().req, 199u);
  EXPECT_EQ(fr.recorded(), 200u);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder fr(64);
  fr.set_enabled(false);
  fr.record(FlightKind::kMark, "nope", 1, 0, 0);
  EXPECT_TRUE(fr.snapshot().empty());
  EXPECT_EQ(fr.recorded(), 0u);
  fr.set_enabled(true);
  fr.record(FlightKind::kMark, "yes", 2, 0, 0);
  EXPECT_EQ(fr.snapshot().size(), 1u);
}

TEST(FlightRecorder, ConcurrentWritersAndReadersStayCoherent) {
  // TSan target: writers hammer the ring while readers snapshot.  Every
  // event a snapshot returns must be internally consistent — a name
  // from the writer set and (start, end) stamped by the same record()
  // call (end == start + 1 for the writer's own req tag).
  FlightRecorder fr(256);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  static const char* const kNames[kWriters] = {"w0", "w1", "w2", "w3"};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightEvent& e : fr.snapshot()) {
        bool known = false;
        for (const char* n : kNames) known = known || std::strcmp(e.name, n) == 0;
        if (!known || e.end_ns != e.start_ns + 1 || e.req != e.start_ns) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t tag =
            static_cast<std::uint64_t>(w) * kPerWriter + i;
        fr.record(FlightKind::kSpan, kNames[w], tag, tag, tag + 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(fr.recorded(), static_cast<std::uint64_t>(kWriters) * kPerWriter);
  const auto snap = fr.snapshot();
  EXPECT_EQ(snap.size(), 256u);
}

TEST(FlightRecorder, GlobalIsSingletonAndEnabled) {
  FlightRecorder& a = FlightRecorder::global();
  FlightRecorder& b = FlightRecorder::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.capacity(), 64u);
}

}  // namespace
}  // namespace ookami::trace
