// Tests for the src/serve subsystem: catalog digest determinism and
// the batching bit-identity invariant, admission-queue backpressure and
// coalescing order, the typed request/error protocol, and the full
// daemon over live sockets — burst rejection, drain-on-SIGTERM, the
// /metrics exposition, and a multi-client hammer (the TSan target).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ookami/common/threadpool.hpp"
#include "ookami/harness/json.hpp"
#include "ookami/serve/catalog.hpp"
#include "ookami/serve/http.hpp"
#include "ookami/serve/protocol.hpp"
#include "ookami/serve/queue.hpp"
#include "ookami/serve/server.hpp"

namespace ookami::serve {
namespace {

namespace json = harness::json;

// --------------------------------------------------------- catalog

TEST(Catalog, ListsServableKernelsWithCaps) {
  const Catalog& cat = Catalog::global();
  ASSERT_NE(cat.find("vecmath.exp"), nullptr);
  ASSERT_NE(cat.find("npb.cg.spmv"), nullptr);
  ASSERT_NE(cat.find("hpcc.dgemm"), nullptr);
  EXPECT_EQ(cat.find("no.such.kernel"), nullptr);
  for (const auto& k : cat.kernels()) {
    EXPECT_GT(k.max_n, 0u);
    EXPECT_NE(k.run, nullptr);
  }
}

TEST(Catalog, DigestIsDeterministicAndSeedSensitive) {
  ThreadPool pool(2);
  const ServableKernel* k = Catalog::global().find("vecmath.exp");
  ASSERT_NE(k, nullptr);
  auto digest_of = [&](std::uint64_t seed) {
    std::vector<BatchItem> items(1);
    items[0].n = 4096;
    items[0].seed = seed;
    k->run(items, pool);
    return items[0].digest;
  };
  EXPECT_EQ(digest_of(7), digest_of(7));
  EXPECT_NE(digest_of(7), digest_of(8));
}

TEST(Catalog, BatchedResultsBitIdenticalToSolo) {
  // The coalescing invariant: a request's digest must not depend on
  // what it was batched with.  Run 5 jobs solo, then as one batch, on a
  // pool whose chunking would split them across workers.
  ThreadPool pool(4);
  const struct {
    const char* kernel;
    std::size_t n;
  } cases[] = {{"vecmath.exp", 1024}, {"vecmath.sqrt", 513}, {"npb.cg.spmv", 1024},
               {"hpcc.dgemm", 64}};
  for (const auto& c : cases) {
    const ServableKernel* k = Catalog::global().find(c.kernel);
    ASSERT_NE(k, nullptr) << c.kernel;
    std::vector<std::uint64_t> solo;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      std::vector<BatchItem> one(1);
      one[0].n = c.n;
      one[0].seed = seed;
      k->run(one, pool);
      solo.push_back(one[0].digest);
    }
    std::vector<BatchItem> batch(5);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      batch[seed - 1].n = c.n;
      batch[seed - 1].seed = seed;
    }
    k->run(batch, pool);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].digest, solo[i]) << c.kernel << " item " << i;
    }
  }
}

// --------------------------------------------------- admission queue

std::shared_ptr<Pending> make_pending(const ServableKernel* k, int backend = -1) {
  auto p = std::make_shared<Pending>();
  p->servable = k;
  p->n = 16;
  p->backend_constraint = backend;
  return p;
}

TEST(AdmissionQueue, TryPushRejectsWhenFullWithoutBlocking) {
  const ServableKernel* k = Catalog::global().find("vecmath.exp");
  AdmissionQueue q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(make_pending(k)));
  EXPECT_TRUE(q.try_push(make_pending(k)));
  EXPECT_EQ(q.depth(), 2u);
  // Full: the reject is immediate — this call would deadlock the test
  // if it blocked, since nothing is popping.
  EXPECT_FALSE(q.try_push(make_pending(k)));
  EXPECT_EQ(q.depth(), 2u);
}

TEST(AdmissionQueue, PopBatchCoalescesCompatibleInQueueOrder) {
  const Catalog& cat = Catalog::global();
  const ServableKernel* ka = cat.find("vecmath.exp");
  const ServableKernel* kb = cat.find("vecmath.sin");
  AdmissionQueue q(8);
  auto a1 = make_pending(ka);
  auto b1 = make_pending(kb);
  auto a2 = make_pending(ka);
  auto a3 = make_pending(ka, /*backend=*/0);  // same kernel, pinned backend
  ASSERT_TRUE(q.try_push(a1));
  ASSERT_TRUE(q.try_push(b1));
  ASSERT_TRUE(q.try_push(a2));
  ASSERT_TRUE(q.try_push(a3));

  // Head is a1; a2 coalesces (same kernel, same no-constraint), b1 and
  // a3 do not.  Queue order within the batch is preserved.
  auto batch = q.pop_batch(8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], a1);
  EXPECT_EQ(batch[1], a2);
  // Skipped-over requests keep FIFO order.
  batch = q.pop_batch(8);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], b1);
  batch = q.pop_batch(8);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], a3);
}

TEST(AdmissionQueue, PopBatchHonorsMax) {
  const ServableKernel* k = Catalog::global().find("vecmath.exp");
  AdmissionQueue q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(make_pending(k)));
  EXPECT_EQ(q.pop_batch(2).size(), 2u);
  EXPECT_EQ(q.pop_batch(2).size(), 2u);
  EXPECT_EQ(q.pop_batch(2).size(), 1u);
}

TEST(AdmissionQueue, CloseDrainsRemainingThenReturnsEmpty) {
  const ServableKernel* k = Catalog::global().find("vecmath.exp");
  AdmissionQueue q(4);
  ASSERT_TRUE(q.try_push(make_pending(k)));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(make_pending(k)));  // drain mode: no admissions
  EXPECT_EQ(q.pop_batch(4).size(), 1u);       // already-admitted work drains
  EXPECT_TRUE(q.pop_batch(4).empty());        // then the executor's exit signal
}

TEST(AdmissionQueue, PopBlocksUntilPushArrives) {
  const ServableKernel* k = Catalog::global().find("vecmath.exp");
  AdmissionQueue q(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto batch = q.pop_batch(4);
    got.store(batch.size() == 1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(q.try_push(make_pending(k)));
  consumer.join();
  EXPECT_TRUE(got.load());
}

// --------------------------------------------------------- protocol

TEST(Protocol, ParseRequestReportsTypedErrors) {
  Request req;
  std::string err;
  EXPECT_EQ(parse_request("{not json", req, err), ErrorCode::kBadRequest);
  EXPECT_NE(err.find("malformed"), std::string::npos);
  EXPECT_EQ(parse_request("[1,2]", req, err), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request("{\"n\": 16}", req, err), ErrorCode::kBadRequest);  // no kernel
  EXPECT_EQ(parse_request("{\"kernel\": \"x\"}", req, err), ErrorCode::kBadRequest);  // no n
  EXPECT_EQ(parse_request("{\"kernel\": \"x\", \"n\": 0}", req, err), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request("{\"kernel\": \"x\", \"n\": 2.5}", req, err), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request("{\"kernel\": \"x\", \"n\": 4, \"seed\": -1}", req, err),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request("{\"kernel\": \"x\", \"n\": 4, \"backend\": \"neon\"}", req, err),
            ErrorCode::kBadRequest);

  ASSERT_EQ(parse_request("{\"kernel\": \"vecmath.exp\", \"n\": 64, \"seed\": 9, "
                          "\"backend\": \"scalar\"}",
                          req, err),
            ErrorCode::kNone);
  EXPECT_EQ(req.kernel, "vecmath.exp");
  EXPECT_EQ(req.n, 64u);
  EXPECT_EQ(req.seed, 9u);
  EXPECT_TRUE(req.has_backend);
  EXPECT_EQ(req.backend, simd::Backend::kScalar);
}

TEST(Protocol, ErrorTaxonomyMapsToHttpStatus) {
  EXPECT_EQ(http_status(ErrorCode::kNone), 200);
  EXPECT_EQ(http_status(ErrorCode::kBadRequest), 400);
  EXPECT_EQ(http_status(ErrorCode::kUnknownKernel), 404);
  EXPECT_EQ(http_status(ErrorCode::kNotFound), 404);
  EXPECT_EQ(http_status(ErrorCode::kOverloaded), 429);
  EXPECT_EQ(http_status(ErrorCode::kDraining), 503);
  EXPECT_EQ(http_status(ErrorCode::kInternal), 500);
  const std::string body = error_body(ErrorCode::kOverloaded, "queue full");
  EXPECT_NE(body.find("\"overloaded\""), std::string::npos);
  EXPECT_NE(body.find("queue full"), std::string::npos);
  EXPECT_NE(error_body(ErrorCode::kNotFound, "x").find("\"not_found\""), std::string::npos);
  EXPECT_EQ(digest_hex(0xdeadbeefull).size(), 16u);
  EXPECT_EQ(digest_hex(0xdeadbeefull), "00000000deadbeef");
}

// ------------------------------------------------- live server tests

struct RunReply {
  int status = 0;
  json::Value doc;
};

RunReply run_request(HttpClient& client, const std::string& kernel, std::size_t n,
                     std::uint64_t seed) {
  json::Value body = json::Value::object();
  body.set("kernel", kernel);
  body.set("n", static_cast<unsigned long long>(n));
  body.set("seed", static_cast<unsigned long long>(seed));
  const HttpClient::Result r = client.post("/run", body.dump(0));
  return {r.status, json::Value::parse(r.body)};
}

ServerOptions test_options(std::size_t queue_depth = 32, std::size_t max_batch = 8,
                           unsigned threads = 2) {
  ServerOptions opts;
  opts.port = 0;  // ephemeral
  opts.queue_depth = queue_depth;
  opts.max_batch = max_batch;
  opts.threads = threads;
  return opts;
}

TEST(Server, HealthKernelsAndConfigEndpoints) {
  Server server(test_options());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  EXPECT_EQ(client.get("/healthz").status, 200);
  const auto kernels = client.get("/kernels");
  EXPECT_EQ(kernels.status, 200);
  EXPECT_NE(kernels.body.find("vecmath.exp"), std::string::npos);
  EXPECT_EQ(client.get("/nope").status, 404);

  EXPECT_EQ(client.post("/config", "{\"batch\": 4}").status, 200);
  EXPECT_EQ(server.max_batch(), 4u);
  EXPECT_EQ(client.post("/config", "{\"batch\": 0}").status, 400);
  EXPECT_EQ(client.post("/config", "{oops").status, 400);
  EXPECT_EQ(server.max_batch(), 4u);
  server.drain();
  EXPECT_FALSE(server.running());
}

TEST(Server, RunIsDeterministicAndReportsTimings) {
  Server server(test_options());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const RunReply a = run_request(client, "vecmath.exp", 4096, 7);
  const RunReply b = run_request(client, "vecmath.exp", 4096, 7);
  ASSERT_EQ(a.status, 200);
  ASSERT_EQ(b.status, 200);
  EXPECT_EQ(a.doc.at("digest").as_string(), b.doc.at("digest").as_string());
  EXPECT_FALSE(a.doc.at("backend").as_string().empty());
  EXPECT_GE(a.doc.at("queue_us").as_number(), 0.0);
  EXPECT_GT(a.doc.at("run_us").as_number(), 0.0);
  EXPECT_GE(a.doc.at("total_us").as_number(), a.doc.at("run_us").as_number());

  const RunReply c = run_request(client, "vecmath.exp", 4096, 8);
  EXPECT_NE(a.doc.at("digest").as_string(), c.doc.at("digest").as_string());
  server.drain();
}

TEST(Server, TypedErrorsOverHttp) {
  Server server(test_options());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const RunReply unknown = run_request(client, "no.such.kernel", 64, 1);
  EXPECT_EQ(unknown.status, 404);
  EXPECT_EQ(unknown.doc.at("error").as_string(), "unknown_kernel");

  const HttpClient::Result malformed = client.post("/run", "{this is not json");
  EXPECT_EQ(malformed.status, 400);
  EXPECT_NE(malformed.body.find("bad_request"), std::string::npos);

  // Oversized n is rejected up front, before admission.
  const RunReply too_big = run_request(client, "hpcc.dgemm", 100000, 1);
  EXPECT_EQ(too_big.status, 400);
  EXPECT_EQ(too_big.doc.at("error").as_string(), "bad_request");

  // The connection survives typed errors (keep-alive, not dropped).
  EXPECT_EQ(run_request(client, "vecmath.sin", 256, 1).status, 200);
  server.drain();
}

TEST(Server, BatchedDigestsMatchUnbatched) {
  // Server-level coalescing correctness: digests collected with
  // batching disabled must reproduce exactly under concurrent load
  // with batching enabled.
  Server server(test_options(/*queue_depth=*/64, /*max_batch=*/1, /*threads=*/4));
  server.start();

  std::map<std::uint64_t, std::string> unbatched;
  {
    HttpClient client("127.0.0.1", server.port());
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const RunReply r = run_request(client, "vecmath.tanh", 2048, seed);
      ASSERT_EQ(r.status, 200);
      EXPECT_EQ(r.doc.at("batch").as_number(), 1.0);
      unbatched[seed] = r.doc.at("digest").as_string();
    }
    ASSERT_EQ(client.post("/config", "{\"batch\": 16}").status, 200);
  }

  std::vector<std::thread> clients;
  std::mutex mu;
  std::map<std::uint64_t, std::string> batched;
  double max_batch_seen = 0.0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    clients.emplace_back([&, seed] {
      HttpClient client("127.0.0.1", server.port());
      const RunReply r = run_request(client, "vecmath.tanh", 2048, seed);
      ASSERT_EQ(r.status, 200);
      std::lock_guard lk(mu);
      batched[seed] = r.doc.at("digest").as_string();
      max_batch_seen = std::max(max_batch_seen, r.doc.at("batch").as_number());
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(batched, unbatched);
  // Not asserting a specific batch size (timing-dependent), but the
  // response must report a sane one.
  EXPECT_GE(max_batch_seen, 1.0);
  EXPECT_LE(max_batch_seen, 16.0);
  server.drain();
}

TEST(Server, QueueFullBurstGetsTypedOverloadedRejection) {
  // Tiny queue + slow kernel: a 12-request burst must split into some
  // completions and some *immediate* typed rejections — never a
  // blocked accept loop (the rejections come back while the first
  // request is still running).
  Server server(test_options(/*queue_depth=*/1, /*max_batch=*/1, /*threads=*/2));
  server.start();

  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 12; ++i) {
    clients.emplace_back([&, i] {
      HttpClient client("127.0.0.1", server.port());
      const RunReply r = run_request(client, "hpcc.dgemm", 512, static_cast<std::uint64_t>(i));
      if (r.status == 200) {
        ++ok;
      } else if (r.status == 429) {
        EXPECT_EQ(r.doc.at("error").as_string(), "overloaded");
        ++overloaded;
      } else {
        ++other;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok + overloaded + other, 12);
  EXPECT_EQ(other, 0);
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  server.drain();
}

TEST(Server, DrainCompletesInFlightWorkThenStops) {
  Server server(test_options(/*queue_depth=*/32, /*max_batch=*/4, /*threads=*/2));
  server.start();

  std::atomic<int> ok{0};
  std::atomic<int> draining{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      HttpClient client("127.0.0.1", server.port());
      try {
        const RunReply r = run_request(client, "hpcc.dgemm", 256, static_cast<std::uint64_t>(i));
        if (r.status == 200) {
          ++ok;
        } else if (r.status == 503) {
          ++draining;
        } else {
          ++other;
        }
      } catch (const std::exception&) {
        // Connection refused after the listen socket closed.
        ++draining;
      }
    });
  }
  // Let some requests land, then drain while work is in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.drain();
  for (auto& t : clients) t.join();

  // Every admitted request completed; late arrivals got the typed
  // draining signal (or found the socket closed) — nothing hung and
  // nothing got a broken connection mid-response.
  EXPECT_EQ(ok + draining + other, 8);
  EXPECT_EQ(other, 0);
  EXPECT_GE(ok, 1);
  EXPECT_EQ(static_cast<int>(server.requests_served()), ok.load());
  EXPECT_FALSE(server.running());
}

TEST(Server, SigtermSetsStopFlagForTheDaemonLoop) {
  // ookamid's shutdown path: the handler only flips an atomic; the
  // main loop polls it and calls drain().  raise(3) exercises the same
  // handler a real `kill -TERM` hits.
  install_stop_signal_handlers();
  reset_stop_flag();
  EXPECT_FALSE(stop_requested());
  std::raise(SIGTERM);
  EXPECT_TRUE(stop_requested());
  reset_stop_flag();
  EXPECT_FALSE(stop_requested());
}

TEST(Server, MetricsEndpointExposesServingSeries) {
  Server server(test_options());
  server.start();
  HttpClient client("127.0.0.1", server.port());
  ASSERT_EQ(run_request(client, "vecmath.exp", 1024, 3).status, 200);
  ASSERT_EQ(run_request(client, "no.such.kernel", 8, 1).status, 404);

  const HttpClient::Result metrics = client.get("/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("ookami_serve_requests_total 2"), std::string::npos);
  EXPECT_NE(metrics.body.find("ookami_serve_responses_ok 1"), std::string::npos);
  EXPECT_NE(metrics.body.find("ookami_serve_errors_unknown_kernel 1"), std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE ookami_serve_queue_depth gauge"), std::string::npos);
  // Per-kernel latency histogram with cumulative buckets and count.
  EXPECT_NE(metrics.body.find("# TYPE ookami_serve_latency_vecmath_exp histogram"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ookami_serve_latency_vecmath_exp_count 1"), std::string::npos);
  EXPECT_NE(metrics.body.find("ookami_serve_queue_wait_count 1"), std::string::npos);
  server.drain();
}

TEST(Server, HammerManyClientsMixedRequests) {
  // The TSan target: concurrent clients mixing valid kernels, typed
  // errors and /metrics scrapes, all over keep-alive connections.
  Server server(test_options(/*queue_depth=*/128, /*max_batch=*/8, /*threads=*/4));
  server.start();

  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::atomic<int> ok{0};
  std::atomic<int> typed_errors{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < kPerClient; ++i) {
        const int kind = (c + i) % 5;
        try {
          if (kind == 0) {
            const auto r = run_request(client, "vecmath.exp", 4096, static_cast<std::uint64_t>(i));
            r.status == 200 ? ++ok : ++unexpected;
          } else if (kind == 1) {
            const auto r = run_request(client, "vecmath.sin", 2048, static_cast<std::uint64_t>(i));
            r.status == 200 ? ++ok : ++unexpected;
          } else if (kind == 2) {
            const auto r = run_request(client, "npb.cg.spmv", 512, static_cast<std::uint64_t>(i));
            r.status == 200 ? ++ok : ++unexpected;
          } else if (kind == 3) {
            const auto r = run_request(client, "no.such.kernel", 64, 1);
            r.status == 404 ? ++typed_errors : ++unexpected;
          } else {
            const auto r = client.post("/run", "{broken");
            r.status == 400 ? ++typed_errors : ++unexpected;
          }
          if (i % 10 == 0) {
            const auto m = client.get("/metrics");
            if (m.status != 200) ++unexpected;
          }
        } catch (const std::exception&) {
          ++unexpected;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(unexpected, 0);
  EXPECT_EQ(ok + typed_errors, kClients * kPerClient);
  server.drain();
  EXPECT_EQ(static_cast<int>(server.requests_served()), ok.load());
}

// ------------------------------------------ tracing / flight / SLO

TEST(Server, HealthzReportsBuildPoolAndServeState) {
  Server server(test_options(/*queue_depth=*/16, /*max_batch=*/4, /*threads=*/2));
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const HttpClient::Result r = client.get("/healthz");
  ASSERT_EQ(r.status, 200);
  const json::Value doc = json::Value::parse(r.body);
  EXPECT_EQ(doc.string_or("status", ""), "ok");
  EXPECT_GE(doc.number_or("uptime_s", -1.0), 0.0);
  ASSERT_NE(doc.find("build"), nullptr);
  EXPECT_FALSE(doc.find("build")->string_or("compiler", "").empty());
  ASSERT_NE(doc.find("pool"), nullptr);
  EXPECT_EQ(doc.find("pool")->number_or("threads", 0.0), 2.0);
  EXPECT_FALSE(doc.find("pool")->string_or("barrier", "").empty());
  ASSERT_NE(doc.find("serve"), nullptr);
  const json::Value& serve = *doc.find("serve");
  EXPECT_EQ(serve.number_or("queue_capacity", 0.0), 16.0);
  EXPECT_EQ(serve.number_or("batch", 0.0), 4.0);
  ASSERT_NE(serve.find("slo"), nullptr);
  EXPECT_GT(serve.find("slo")->number_or("target_ms", 0.0), 0.0);
  server.drain();
}

TEST(Server, RunResponseCarriesRetrievableTraceId) {
  Server server(test_options());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const RunReply r = run_request(client, "vecmath.exp", 2048, 11);
  ASSERT_EQ(r.status, 200);
  const std::string trace = r.doc.string_or("trace", "");
  ASSERT_EQ(trace.size(), 16u);

  // The span tree is retrievable by that id: queue + kernel spans and
  // the terminal request event, with non-negative offsets.
  const HttpClient::Result t = client.get("/trace/" + trace);
  ASSERT_EQ(t.status, 200);
  const json::Value doc = json::Value::parse(t.body);
  EXPECT_EQ(doc.string_or("schema", ""), "ookami-trace-request-1");
  EXPECT_EQ(doc.string_or("trace", ""), trace);
  ASSERT_NE(doc.find("spans"), nullptr);
  bool saw_queue = false;
  bool saw_kernel = false;
  bool saw_done = false;
  for (const json::Value& s : doc.find("spans")->items()) {
    const std::string name = s.string_or("name", "");
    if (name == "serve/queue") saw_queue = true;
    if (name == "serve/kernel") saw_kernel = true;
    if (name == "serve/done") saw_done = true;
    EXPECT_GE(s.number_or("offset_us", -1.0), 0.0);
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_done);

  // Unknown-but-well-formed ids get the typed not_found; junk gets 400.
  const HttpClient::Result missing = client.get("/trace/0123456789abcdef");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("not_found"), std::string::npos);
  EXPECT_EQ(client.get("/trace/not-hex").status, 400);
  server.drain();
}

TEST(Server, MetricsExemplarsLinkBucketsToTraceIds) {
  Server server(test_options());
  server.start();
  HttpClient client("127.0.0.1", server.port());
  const RunReply r = run_request(client, "vecmath.sqrt", 1024, 5);
  ASSERT_EQ(r.status, 200);
  const std::string trace = r.doc.string_or("trace", "");
  ASSERT_EQ(trace.size(), 16u);

  // The latency histogram's occupied bucket carries this request's id
  // as an OpenMetrics exemplar, and /metrics now exports SLO series.
  const HttpClient::Result m = client.get("/metrics");
  ASSERT_EQ(m.status, 200);
  EXPECT_NE(m.body.find("# {trace_id=\"" + trace + "\"}"), std::string::npos);
  EXPECT_NE(m.body.find("ookami_serve_slo_vecmath_sqrt_burn_1m"), std::string::npos);
  EXPECT_NE(m.body.find("ookami_serve_slo_vecmath_sqrt_total 1"), std::string::npos);
  server.drain();
}

TEST(Server, DebugFlightEndpointDumpsRing) {
  Server server(test_options());
  server.start();
  HttpClient client("127.0.0.1", server.port());
  const RunReply r = run_request(client, "vecmath.exp", 512, 2);
  ASSERT_EQ(r.status, 200);
  const std::string trace = r.doc.string_or("trace", "");

  const HttpClient::Result f = client.get("/debug/flight");
  ASSERT_EQ(f.status, 200);
  const json::Value doc = json::Value::parse(f.body);
  EXPECT_EQ(doc.string_or("schema", ""), "ookami-flight-1");
  EXPECT_EQ(doc.string_or("reason", ""), "endpoint");
  ASSERT_NE(doc.find("events"), nullptr);
  bool saw_mine = false;
  for (const json::Value& e : doc.find("events")->items()) {
    if (e.string_or("req", "") == trace) saw_mine = true;
  }
  EXPECT_TRUE(saw_mine);
  // The counter snapshot rides along (including the dump's own count).
  ASSERT_NE(doc.find("counters"), nullptr);
  EXPECT_GE(doc.find("counters")->number_or("serve/flight_dumps_total", 0.0), 1.0);
  server.drain();
}

TEST(Server, ConfigSetsSloTargetsAndValidates) {
  Server server(test_options());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  // Global default and a per-kernel override, applied together with a
  // batch change (one body, both knobs).
  const HttpClient::Result both =
      client.post("/config", "{\"batch\": 2, \"slo\": {\"target_ms\": 5.0}}");
  ASSERT_EQ(both.status, 200);
  EXPECT_EQ(server.max_batch(), 2u);
  EXPECT_NEAR(server.slo().target_for("*").target_s, 5.0e-3, 1e-12);

  const HttpClient::Result per_kernel = client.post(
      "/config",
      "{\"slo\": {\"kernel\": \"hpcc.dgemm\", \"target_ms\": 250.0, \"objective\": 0.999}}");
  ASSERT_EQ(per_kernel.status, 200);
  EXPECT_NEAR(server.slo().target_for("hpcc.dgemm").target_s, 0.250, 1e-12);
  EXPECT_NEAR(server.slo().target_for("hpcc.dgemm").objective, 0.999, 1e-12);
  // Kernels without an override still get the default.
  EXPECT_NEAR(server.slo().target_for("vecmath.exp").target_s, 5.0e-3, 1e-12);

  // Validation: missing/zero target, out-of-range objective.
  EXPECT_EQ(client.post("/config", "{\"slo\": {}}").status, 400);
  EXPECT_EQ(client.post("/config", "{\"slo\": {\"target_ms\": 0}}").status, 400);
  EXPECT_EQ(client.post("/config", "{\"slo\": {\"target_ms\": 5, \"objective\": 1.5}}").status,
            400);
  // Nothing was clobbered by the rejected bodies.
  EXPECT_NEAR(server.slo().target_for("*").target_s, 5.0e-3, 1e-12);
  server.drain();
}

TEST(Server, SloBreachWritesFlightDumpFile) {
  // An impossible SLO (1 ns) makes every request an error; with
  // objective 0.99 the 1m burn rate is ~100, far past the 14.4 trigger,
  // so the first completed batch must write the flight dump file.
  const std::string path =
      "/tmp/ookami_flight_breach_" + std::to_string(::getpid()) + ".json";
  std::remove(path.c_str());
  ServerOptions opts = test_options();
  opts.slo_target_ms = 1e-6;
  opts.flight_dump_path = path;
  Server server(opts);
  server.start();
  HttpClient client("127.0.0.1", server.port());
  const RunReply r = run_request(client, "vecmath.exp", 4096, 3);
  ASSERT_EQ(r.status, 200);
  const std::string trace = r.doc.string_or("trace", "");

  // The dump happens on the executor thread right after the batch
  // completes; give it a moment to hit the filesystem.
  std::string body;
  for (int i = 0; i < 200 && body.empty(); ++i) {
    std::ifstream in(path);
    if (in) {
      std::ostringstream os;
      os << in.rdbuf();
      body = os.str();
    }
    if (body.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(body.empty()) << "no flight dump at " << path;
  const json::Value doc = json::Value::parse(body);
  EXPECT_EQ(doc.string_or("schema", ""), "ookami-flight-1");
  EXPECT_EQ(doc.string_or("reason", ""), "slo_burn");
  bool saw_mine = false;
  for (const json::Value& e : doc.find("events")->items()) {
    if (e.string_or("req", "") == trace) saw_mine = true;
  }
  EXPECT_TRUE(saw_mine);
  server.drain();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ookami::serve
