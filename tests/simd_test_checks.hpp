#pragma once
// Arch-templated check bodies shared between simd_test.cpp (scalar and
// SSE2 instantiations — both compile under baseline flags) and
// simd_test_avx2.cpp (AVX2 instantiations, which need a TU compiled
// with -mavx2/-mfma because the avx2 batch specializations are
// preprocessor-gated on __AVX2__).  The gtest EXPECT/ASSERT macros work
// from any TU linked into the test binary.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "ookami/common/rng.hpp"
#include "ookami/simd/sve.hpp"
#include "ookami/sve/fexpa.hpp"
#include "ookami/sve/sve.hpp"

namespace ookami::simd::testing {

inline std::uint64_t bits_of(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

/// Inputs covering the special-value corners every op must preserve.
inline std::vector<double> special_inputs() {
  std::vector<double> v = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           0.5,
                           -2.5,
                           1e300,
                           -1e300,
                           1e-300,
                           4.9406564584124654e-324,  // min subnormal
                           -4.9406564584124654e-324,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::min()};
  Xoshiro256 rng(7);
  std::vector<double> r(64);
  fill_uniform({r.data(), r.size()}, -1e6, 1e6, rng);
  v.insert(v.end(), r.begin(), r.end());
  return v;
}

template <class A>
void expect_batch_matches_scalar() {
  using V = batch<double, 8, A>;
  using VS = batch<double, 8, arch::scalar>;
  using M = mask<8, A>;
  const auto xs = special_inputs();
  for (std::size_t base = 0; base + 16 <= xs.size(); base += 8) {
    const double* px = xs.data() + base;
    const double* py = xs.data() + base + 8;
    const V a = V::load(px), b = V::load(py);
    const VS as = VS::load(px), bs = VS::load(py);
    auto same = [&](const V& got, const VS& want, const char* what) {
      const auto g = got.to_array();
      const auto w = want.to_array();
      for (int l = 0; l < 8; ++l) {
        EXPECT_EQ(bits_of(g[static_cast<std::size_t>(l)]), bits_of(w[static_cast<std::size_t>(l)]))
            << what << " lane " << l << " base " << base;
      }
    };
    same(a + b, as + bs, "add");
    same(a - b, as - bs, "sub");
    same(a * b, as * bs, "mul");
    same(a / b, as / bs, "div");
    same(-a, -as, "neg");
    same(fma(a, b, a), fma(as, bs, as), "fma");
    same(abs(a), abs(as), "abs");
    same(min(a, b), min(as, bs), "min");
    same(max(a, b), max(as, bs), "max");
    same(sqrt(abs(a)), sqrt(abs(as)), "sqrt");
    same(copysign(a, b), copysign(as, bs), "copysign");
    same(frintn(a), frintn(as), "frintn");
    const M pg = M::ptrue();
    const auto pgs = mask<8, arch::scalar>::ptrue();
    same(sel(cmpgt(pg, a, b), a, b), sel(cmpgt(pgs, as, bs), as, bs), "sel/cmpgt");
    same(sel(cmpuo(pg, a), a, b), sel(cmpuo(pgs, as), as, bs), "sel/cmpuo");
    // Reductions share the pairwise tree shape across backends.
    EXPECT_EQ(bits_of(reduce_add(a)), bits_of(reduce_add(as))) << "reduce_add base " << base;
    EXPECT_EQ(bits_of(reduce_add_ordered(pg, a)), bits_of(reduce_add_ordered(pgs, as)))
        << "reduce_add_ordered base " << base;
  }
}

template <class A>
void expect_whilelt_and_tail() {
  using V = batch<double, 8, A>;
  using M = mask<8, A>;
  double src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (std::size_t cnt = 0; cnt <= 8; ++cnt) {
    const M pg = M::whilelt(0, cnt);
    EXPECT_EQ(pg.any(), cnt > 0);
    EXPECT_EQ(pg.all(), cnt == 8);
    for (int l = 0; l < 8; ++l) EXPECT_EQ(pg.lane(l), static_cast<std::size_t>(l) < cnt);
    // ld1 zeroes inactive lanes; st1 leaves inactive memory untouched.
    const V v = V::ld1(pg, src);
    const auto arr = v.to_array();
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(arr[static_cast<std::size_t>(l)],
                static_cast<std::size_t>(l) < cnt ? src[l] : 0.0);
    }
    double dst[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    v.st1(pg, dst);
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(dst[l], static_cast<std::size_t>(l) < cnt ? src[l] : -1.0);
    }
  }
}

template <class A>
void expect_gather_scatter_edges() {
  using V = batch<double, 8, A>;
  using M = mask<8, A>;
  // Unaligned base: a table deliberately offset off 256-byte alignment.
  alignas(256) double storage[64 + 1];
  double* table = storage + 1;
  for (int i = 0; i < 64; ++i) table[i] = 100.0 + i;

  // u32 gather with a partial final predicate.
  const std::uint32_t idx32[8] = {63, 0, 17, 5, 41, 2, 30, 9};
  const M tail = M::whilelt(0, 5);
  const auto g32 = V::gather(tail, table, idx32).to_array();
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(g32[static_cast<std::size_t>(l)], l < 5 ? table[idx32[l]] : 0.0) << "lane " << l;
  }

  // s64 gather with negative offsets relative to an interior base
  // pointer; inactive lanes carry out-of-range indices that must never
  // be dereferenced.
  const double* mid = table + 32;
  const std::int64_t idx64[8] = {-32, -1, 0, 31, -17, 1 << 20, -(1 << 20), 7};
  const M neg = M::whilelt(0, 5);
  const auto g64 = V::gather(neg, mid, idx64).to_array();
  for (int l = 0; l < 5; ++l) {
    EXPECT_EQ(g64[static_cast<std::size_t>(l)], mid[idx64[l]]) << "lane " << l;
  }
  for (int l = 5; l < 8; ++l) EXPECT_EQ(g64[static_cast<std::size_t>(l)], 0.0);

  // Scatter: partial predicate must leave non-addressed memory alone,
  // and negative s64 offsets must land correctly.
  double out[64];
  for (int i = 0; i < 64; ++i) out[i] = -1.0;
  const V vals = V::from_array({1, 2, 3, 4, 5, 6, 7, 8});
  vals.scatter(M::whilelt(0, 5), out + 32, idx64);
  EXPECT_EQ(out[0], 1.0);    // -32
  EXPECT_EQ(out[31], 2.0);   // -1
  EXPECT_EQ(out[32], 3.0);   // 0
  EXPECT_EQ(out[63], 4.0);   // 31
  EXPECT_EQ(out[15], 5.0);   // -17
  int touched = 0;
  for (int i = 0; i < 64; ++i) touched += out[i] != -1.0;
  EXPECT_EQ(touched, 5);
}

/// Bit patterns whose low 17 bits sweep every (table index, exponent)
/// combination FEXPA actually reads, plus random high bits (which the
/// op must ignore) and the subnormal/boundary corners.
template <class A>
void expect_fexpa_bit_identical() {
  using SV = sve_api<A>;
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> patterns;
  patterns.reserve((1u << 17) + 64);
  for (std::uint64_t low = 0; low < (1u << 17); ++low) {
    // fexpa consumes bits [0,6) (table) and [6,17) (exponent): keep the
    // full low sweep and scramble the ignored high bits.
    patterns.push_back(low | (rng() << 17));
  }
  // Boundary exponents: results underflow to subnormals / overflow.
  for (std::uint64_t e : {0ull, 1ull, 2ull, 0x7feull, 0x7ffull}) {
    for (std::uint64_t t : {0ull, 1ull, 62ull, 63ull}) patterns.push_back((e << 6) | t);
  }
  for (std::size_t base = 0; base + 8 <= patterns.size(); base += 8) {
    sve::VecU64 u;
    std::array<std::int64_t, 8> ui{};
    for (int l = 0; l < 8; ++l) {
      u[l] = patterns[base + static_cast<std::size_t>(l)];
      ui[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(u[l]);
    }
    const sve::Vec ref = sve::fexpa(u);
    const auto got = SV::fexpa(batch<std::int64_t, 8, A>::from_array(ui)).to_array();
    for (int l = 0; l < 8; ++l) {
      ASSERT_EQ(bits_of(got[static_cast<std::size_t>(l)]), bits_of(ref[l]))
          << "fexpa pattern " << std::hex << u[l];
    }
  }
}

template <class A>
void expect_estimates_bit_identical() {
  using SV = sve_api<A>;
  std::vector<double> xs = special_inputs();
  xs.push_back(2.2250738585072014e-308);  // min normal
  xs.push_back(-2.2250738585072014e-308);
  while (xs.size() % 8 != 0) xs.push_back(1.0);
  for (std::size_t base = 0; base < xs.size(); base += 8) {
    sve::Vec v;
    for (int l = 0; l < 8; ++l) v[l] = xs[base + static_cast<std::size_t>(l)];
    const auto bv = batch<double, 8, A>::load(xs.data() + base);
    const sve::Vec r1 = sve::frecpe(v);
    const auto g1 = SV::frecpe(bv).to_array();
    const sve::Vec r2 = sve::frsqrte(v);
    const auto g2 = SV::frsqrte(bv).to_array();
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(bits_of(g1[static_cast<std::size_t>(l)]), bits_of(r1[l]))
          << "frecpe(" << v[l] << ")";
      EXPECT_EQ(bits_of(g2[static_cast<std::size_t>(l)]), bits_of(r2[l]))
          << "frsqrte(" << v[l] << ")";
    }
  }
}

// Defined in simd_test_avx2.cpp (compiled with -mavx2/-mfma) when the
// toolchain can build AVX2 kernels; simd_test.cpp calls them after a
// runtime CPU-support check.
void avx2_batch_matches_scalar();
void avx2_whilelt_and_tail();
void avx2_gather_scatter_edges();
void avx2_fexpa_bit_identical();
void avx2_estimates_bit_identical();

// Defined in simd_test_avx512.cpp (compiled with -mavx512f/-mavx512dq)
// when the toolchain can build AVX-512 kernels; simd_test.cpp calls
// them after a runtime CPU-support check.
void avx512_batch_matches_scalar();
void avx512_whilelt_and_tail();
void avx512_gather_scatter_edges();
void avx512_fexpa_bit_identical();
void avx512_estimates_bit_identical();

}  // namespace ookami::simd::testing
