// Tests for the fixed-width SIMD layer: backend selection/clamping, the
// batch op set per compiled backend (cross-checked against the scalar
// batch bit-for-bit), gather/scatter edge cases (unaligned pointers,
// partial final predicates, negative 64-bit offsets), the FEXPA /
// estimate-op bit cross-check against the sve reference, and the hot
// kernels (DGEMM, fig1 loops) forced onto every backend.
//
// The templated check bodies live in simd_test_checks.hpp; the AVX2
// instantiations are built in simd_test_avx2.cpp with -mavx2/-mfma
// because the avx2 batch specializations only exist under those flags.

#include <gtest/gtest.h>

#include <vector>

#include "ookami/hpcc/hpcc.hpp"
#include "ookami/loops/kernels.hpp"
#include "ookami/simd/backend.hpp"
#include "simd_test_checks.hpp"

namespace ookami::simd {
namespace {

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

TEST(Backend, NamesRoundTrip) {
  for (Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2, Backend::kAvx512}) {
    Backend parsed{};
    ASSERT_TRUE(parse_backend(backend_name(b), parsed));
    EXPECT_EQ(parsed, b);
  }
  Backend out = Backend::kAvx2;
  EXPECT_FALSE(parse_backend("neon", out));
  EXPECT_FALSE(parse_backend("AVX2", out));  // tokens are case-sensitive
  EXPECT_EQ(out, Backend::kAvx2);            // untouched on failure
}

TEST(Backend, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(backend_compiled(Backend::kScalar));
  EXPECT_TRUE(backend_supported(Backend::kScalar));
  EXPECT_EQ(clamp_backend(Backend::kScalar), Backend::kScalar);
}

TEST(Backend, ClampNeverExceedsRequest) {
  for (Backend req : {Backend::kScalar, Backend::kSse2, Backend::kAvx2, Backend::kAvx512}) {
    const Backend got = clamp_backend(req);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(req));
    EXPECT_TRUE(backend_compiled(got));
    EXPECT_TRUE(backend_supported(got));
  }
}

TEST(Backend, DetectedIsCompiledAndSupported) {
  const Backend b = detected_backend();
  EXPECT_TRUE(backend_compiled(b));
  EXPECT_TRUE(backend_supported(b));
}

TEST(Backend, ScopedOverrideAppliesAndRestores) {
  const Backend before = active_backend();
  {
    ScopedBackend force(Backend::kScalar);
    EXPECT_EQ(force.effective(), Backend::kScalar);
    EXPECT_EQ(active_backend(), Backend::kScalar);
    {
      // Nested override wins, then unwinds to the outer one.
      ScopedBackend inner(detected_backend());
      EXPECT_EQ(active_backend(), detected_backend());
    }
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
  EXPECT_EQ(active_backend(), before);
}

// ---------------------------------------------------------------------------
// Batch ops / predication / gather-scatter / fexpa / estimates, per arch
// ---------------------------------------------------------------------------

TEST(BatchOps, ScalarSelfConsistent) { testing::expect_batch_matches_scalar<arch::scalar>(); }
TEST(BatchPredication, Scalar) { testing::expect_whilelt_and_tail<arch::scalar>(); }
TEST(GatherScatter, Scalar) { testing::expect_gather_scatter_edges<arch::scalar>(); }
TEST(FexpaBits, Scalar) { testing::expect_fexpa_bit_identical<arch::scalar>(); }
TEST(EstimateOps, Scalar) { testing::expect_estimates_bit_identical<arch::scalar>(); }

// SSE2 is the x86-64 baseline, so these instantiate in this TU.
#if defined(OOKAMI_SIMD_HAVE_SSE2)
TEST(BatchOps, Sse2MatchesScalar) { testing::expect_batch_matches_scalar<arch::sse2>(); }
TEST(BatchPredication, Sse2) { testing::expect_whilelt_and_tail<arch::sse2>(); }
TEST(GatherScatter, Sse2) { testing::expect_gather_scatter_edges<arch::sse2>(); }
TEST(FexpaBits, Sse2) { testing::expect_fexpa_bit_identical<arch::sse2>(); }
TEST(EstimateOps, Sse2) { testing::expect_estimates_bit_identical<arch::sse2>(); }
#endif

#if defined(OOKAMI_SIMD_HAVE_AVX2)
#define OOKAMI_AVX2_TEST(suite, name, fn)                                 \
  TEST(suite, name) {                                                     \
    if (!backend_supported(Backend::kAvx2)) GTEST_SKIP() << "no AVX2 on this CPU"; \
    testing::fn();                                                        \
  }
OOKAMI_AVX2_TEST(BatchOps, Avx2MatchesScalar, avx2_batch_matches_scalar)
OOKAMI_AVX2_TEST(BatchPredication, Avx2, avx2_whilelt_and_tail)
OOKAMI_AVX2_TEST(GatherScatter, Avx2, avx2_gather_scatter_edges)
OOKAMI_AVX2_TEST(FexpaBits, Avx2, avx2_fexpa_bit_identical)
OOKAMI_AVX2_TEST(EstimateOps, Avx2, avx2_estimates_bit_identical)
#undef OOKAMI_AVX2_TEST
#endif

#if defined(OOKAMI_SIMD_HAVE_AVX512)
#define OOKAMI_AVX512_TEST(suite, name, fn)                               \
  TEST(suite, name) {                                                     \
    if (!backend_supported(Backend::kAvx512))                             \
      GTEST_SKIP() << "no AVX-512 on this CPU";                           \
    testing::fn();                                                        \
  }
OOKAMI_AVX512_TEST(BatchOps, Avx512MatchesScalar, avx512_batch_matches_scalar)
OOKAMI_AVX512_TEST(BatchPredication, Avx512, avx512_whilelt_and_tail)
OOKAMI_AVX512_TEST(GatherScatter, Avx512, avx512_gather_scatter_edges)
OOKAMI_AVX512_TEST(FexpaBits, Avx512, avx512_fexpa_bit_identical)
OOKAMI_AVX512_TEST(EstimateOps, Avx512, avx512_estimates_bit_identical)
#undef OOKAMI_AVX512_TEST
#endif

// ---------------------------------------------------------------------------
// Hot kernels forced onto every available backend
// ---------------------------------------------------------------------------

std::vector<Backend> available_backends() {
  std::vector<Backend> v = {Backend::kScalar};
  for (Backend b : {Backend::kSse2, Backend::kAvx2, Backend::kAvx512}) {
    if (backend_compiled(b) && backend_supported(b)) v.push_back(b);
  }
  return v;
}

TEST(KernelsPerBackend, DgemmMatchesNaive) {
  for (Backend b : available_backends()) {
    ScopedBackend force(b);
    for (std::size_t n : {64u, 100u, 129u}) {
      const double tol = 1e-11 * static_cast<double>(n);
      EXPECT_LE(hpcc::dgemm_check(hpcc::GemmImpl::kBlocked, n, 2), tol)
          << backend_name(b) << " blocked n=" << n;
      EXPECT_LE(hpcc::dgemm_check(hpcc::GemmImpl::kTuned, n, 2), tol)
          << backend_name(b) << " tuned n=" << n;
    }
  }
}

TEST(KernelsPerBackend, Fig1LoopsMatchScalarReference) {
  for (Backend b : available_backends()) {
    ScopedBackend force(b);
    for (loops::LoopKind kind : loops::fig1_loop_kinds()) {
      for (std::size_t n : {8u, 13u, 256u}) {
        EXPECT_LE(loops::max_ulp_scalar_vs_sve(kind, n, 23), 1.0)
            << backend_name(b) << " " << loops::loop_name(kind) << " n=" << n;
      }
    }
  }
}

}  // namespace
}  // namespace ookami::simd
