// Barrier-strategy and concurrent-submission coverage for ThreadPool.
//
// Every behavioural guarantee the pool documents (visit-once chunking,
// exception propagation, init folded exactly once, nested degradation)
// must hold under each BarrierMode, and the single-atomic claim must
// survive many outside threads hammering one pool at once — the
// historical two-lock submission path let two simultaneous submitters
// both win and clobber each other's region state.

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ookami/common/barrier.hpp"
#include "ookami/common/threadpool.hpp"

using namespace ookami;

namespace {

constexpr BarrierMode kAllModes[] = {BarrierMode::kCondvar, BarrierMode::kSpin,
                                     BarrierMode::kHierarchical};

std::string mode_label(BarrierMode mode) { return barrier_mode_name(mode); }

}  // namespace

TEST(BarrierMode, ParseRoundTrip) {
  for (BarrierMode mode : kAllModes) {
    const auto parsed = parse_barrier_mode(barrier_mode_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(parse_barrier_mode("hier"), BarrierMode::kHierarchical);
  EXPECT_FALSE(parse_barrier_mode("sleepy").has_value());
  EXPECT_FALSE(parse_barrier_mode("").has_value());
}

TEST(BarrierConformance, ParallelForVisitsEachIndexOnce) {
  for (BarrierMode mode : kAllModes) {
    ThreadPool pool(4, mode);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), [&](std::size_t b, std::size_t e, unsigned) {
      for (std::size_t i = b; i < e; ++i) hits[i] += 1;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << mode_label(mode);
  }
}

TEST(BarrierConformance, ParallelReduceFoldsInitExactlyOnce) {
  constexpr double kInit = 100.0;
  const double expected = kInit + 999.0 * 1000.0 / 2.0;
  for (BarrierMode mode : kAllModes) {
    for (unsigned nthreads : {1u, 3u, 8u}) {
      ThreadPool pool(nthreads, mode);
      const double total = pool.parallel_reduce(
          0, 1000, kInit,
          [](std::size_t b, std::size_t e, unsigned) {
            double s = 0.0;
            for (std::size_t i = b; i < e; ++i) s += static_cast<double>(i);
            return s;
          },
          [](double a, double b) { return a + b; });
      EXPECT_EQ(total, expected) << mode_label(mode) << " with " << nthreads << " threads";
    }
  }
}

TEST(BarrierConformance, ExceptionPropagationAndReuse) {
  for (BarrierMode mode : kAllModes) {
    ThreadPool pool(4, mode);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [](std::size_t b, std::size_t, unsigned) {
                                     if (b == 0) throw std::runtime_error("worker failed");
                                   }),
                 std::runtime_error)
        << mode_label(mode);
    // The join must have stayed balanced: the pool is immediately
    // reusable after a throwing region.
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t b, std::size_t e, unsigned) {
      count += static_cast<int>(e - b);
    });
    EXPECT_EQ(count.load(), 64) << mode_label(mode);
  }
}

TEST(BarrierConformance, NestedParallelForDegradesToSerial) {
  for (BarrierMode mode : kAllModes) {
    ThreadPool pool(4, mode);
    std::atomic<int> count{0};
    pool.parallel_for(0, 4, [&](std::size_t, std::size_t, unsigned) {
      pool.parallel_for(0, 10, [&](std::size_t b, std::size_t e, unsigned) {
        count += static_cast<int>(e - b);
      });
    });
    EXPECT_EQ(count.load(), 40) << mode_label(mode);
  }
}

// Regression for the concurrent-submission race: the active_ check and
// the task_/generation_ claim used to live in two separate lock scopes,
// so two outside submitters could both pass the check and corrupt the
// region state (lost chunks, double-run chunks, or a stuck join).  With
// the atomic check-and-claim every index is incremented exactly once no
// matter how many threads submit concurrently — losers run serially.
TEST(BarrierConformance, ConcurrentSubmittersLoseNoChunks) {
  constexpr unsigned kSubmitters = 6;
  constexpr int kRoundsPerSubmitter = 50;
  constexpr std::size_t kN = 512;
  for (BarrierMode mode : kAllModes) {
    ThreadPool pool(4, mode);
    std::vector<std::atomic<int>> hits(kN);
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (unsigned s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int r = 0; r < kRoundsPerSubmitter; ++r) {
          pool.parallel_for(0, kN, [&](std::size_t b, std::size_t e, unsigned) {
            for (std::size_t i = b; i < e; ++i) hits[i] += 1;
          });
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : submitters) t.join();
    const int expected = static_cast<int>(kSubmitters) * kRoundsPerSubmitter;
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), expected) << mode_label(mode) << " index " << i;
    }
  }
}

TEST(BarrierConformance, ConcurrentReduceSubmittersStaysCorrect) {
  constexpr unsigned kSubmitters = 4;
  constexpr int kRounds = 30;
  const double expected = 999.0 * 1000.0 / 2.0;
  for (BarrierMode mode : kAllModes) {
    ThreadPool pool(3, mode);
    std::atomic<int> wrong{0};
    std::vector<std::thread> submitters;
    for (unsigned s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        for (int r = 0; r < kRounds; ++r) {
          const double total = pool.parallel_reduce(
              0, 1000, 0.0,
              [](std::size_t b, std::size_t e, unsigned) {
                double acc = 0.0;
                for (std::size_t i = b; i < e; ++i) acc += static_cast<double>(i);
                return acc;
              },
              [](double a, double b) { return a + b; });
          if (total != expected) wrong.fetch_add(1);
        }
      });
    }
    for (auto& t : submitters) t.join();
    EXPECT_EQ(wrong.load(), 0) << mode_label(mode);
  }
}

// Sense reversal must survive arbitrarily many generations: the flip
// flags and sense words only ever alternate, so thousands of
// back-to-back regions exercise every wraparound path there is.
TEST(BarrierConformance, SenseReversalSurvivesManyGenerations) {
  for (BarrierMode mode : {BarrierMode::kSpin, BarrierMode::kHierarchical}) {
    ThreadPool pool(4, mode);
    std::atomic<long> total{0};
    constexpr int kGenerations = 4000;
    for (int g = 0; g < kGenerations; ++g) {
      pool.parallel_for(0, 4, [&](std::size_t b, std::size_t e, unsigned) {
        total += static_cast<long>(e - b);
      });
    }
    EXPECT_EQ(total.load(), 4L * kGenerations) << mode_label(mode);
  }
}

TEST(RawBarrier, AllFlavorsSynchronizeRepeatedPhases) {
  constexpr unsigned kParticipants = 4;
  constexpr int kPhases = 200;
  for (BarrierMode mode : kAllModes) {
    const auto barrier = make_barrier(mode, kParticipants, /*group_size=*/2);
    ASSERT_EQ(barrier->participants(), kParticipants);
    // Phase counters: after every wait() all participants must have
    // contributed to the phase, or some thread ran ahead of the release.
    std::atomic<int> arrivals{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (unsigned slot = 0; slot < kParticipants; ++slot) {
      threads.emplace_back([&, slot] {
        for (int p = 0; p < kPhases; ++p) {
          arrivals.fetch_add(1, std::memory_order_acq_rel);
          barrier->wait(slot);
          // Everyone must observe a full phase's arrivals.
          if (arrivals.load(std::memory_order_acquire) < kParticipants * (p + 1)) {
            mismatches.fetch_add(1);
          }
          barrier->wait(slot);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0) << mode_label(mode);
    EXPECT_EQ(arrivals.load(), static_cast<int>(kParticipants) * kPhases) << mode_label(mode);
  }
}

TEST(RawBarrier, ArriveJoinStyleReleasesOnlyTheRoot) {
  // Workers arrive() and move on; the root's join() must not return
  // until every arrival landed.  Arrive/join style needs an external
  // fork signal ordering the next phase after the current join (in the
  // pool that is the generation word) — `signal` plays that role here.
  constexpr unsigned kParticipants = 4;
  constexpr int kPhases = 300;
  for (BarrierMode mode : kAllModes) {
    const auto barrier = make_barrier(mode, kParticipants, /*group_size=*/2);
    std::atomic<int> arrived{0};
    std::atomic<int> early{0};
    std::atomic<int> signal{0};
    std::vector<std::thread> workers;
    for (unsigned slot = 1; slot < kParticipants; ++slot) {
      workers.emplace_back([&, slot] {
        for (int p = 0; p < kPhases; ++p) {
          while (signal.load(std::memory_order_acquire) < p) std::this_thread::yield();
          arrived.fetch_add(1, std::memory_order_acq_rel);
          barrier->arrive(slot);
        }
      });
    }
    for (int p = 0; p < kPhases; ++p) {
      arrived.fetch_add(1, std::memory_order_acq_rel);
      barrier->join(0);
      if (arrived.load(std::memory_order_acquire) < static_cast<int>(kParticipants) * (p + 1)) {
        early.fetch_add(1);
      }
      signal.store(p + 1, std::memory_order_release);
    }
    for (auto& t : workers) t.join();
    EXPECT_EQ(early.load(), 0) << mode_label(mode);
  }
}

TEST(HierarchicalBarrier, GroupGeometry) {
  HierarchicalBarrier b(10, 4);
  EXPECT_EQ(b.participants(), 10u);
  EXPECT_EQ(b.group_size(), 4u);
  EXPECT_EQ(b.group_count(), 3u);  // 4 + 4 + 2
  // group_size 0 collapses to one flat group.
  HierarchicalBarrier flat(6, 0);
  EXPECT_EQ(flat.group_size(), 6u);
  EXPECT_EQ(flat.group_count(), 1u);
}

TEST(PoolSharding, GroupAccessorsMatchCompactBinding) {
  ThreadPool pool(8, BarrierMode::kSpin, /*group_size=*/3);
  EXPECT_EQ(pool.group_size(), 3u);
  EXPECT_EQ(pool.group_count(), 3u);
  EXPECT_EQ(pool.group_of(0), 0u);
  EXPECT_EQ(pool.group_of(2), 0u);
  EXPECT_EQ(pool.group_of(3), 1u);
  EXPECT_EQ(pool.group_of(7), 2u);
  EXPECT_EQ(pool.group_threads(0), (std::pair<unsigned, unsigned>{0u, 3u}));
  EXPECT_EQ(pool.group_threads(2), (std::pair<unsigned, unsigned>{6u, 8u}));
}

TEST(PoolSharding, GroupSizeClampsToPool) {
  ThreadPool pool(4, BarrierMode::kHierarchical, /*group_size=*/64);
  EXPECT_EQ(pool.group_size(), 4u);
  EXPECT_EQ(pool.group_count(), 1u);
}

TEST(ParallelPhases, RunsPhasesInOrderOverOwnChunks) {
  constexpr std::size_t kN = 600;
  for (BarrierMode mode : kAllModes) {
    ThreadPool pool(4, mode, /*group_size=*/2);
    std::vector<double> a(kN, 0.0), b(kN, 0.0), c(kN, 0.0);
    pool.parallel_phases(0, kN, {
        [&](std::size_t lo, std::size_t hi, unsigned, unsigned) {
          for (std::size_t i = lo; i < hi; ++i) a[i] = static_cast<double>(i);
        },
        // Phase 2 reads phase 1's writes of the *same chunk* — the
        // group-local join contract.
        [&](std::size_t lo, std::size_t hi, unsigned, unsigned) {
          for (std::size_t i = lo; i < hi; ++i) b[i] = 2.0 * a[i];
        },
        [&](std::size_t lo, std::size_t hi, unsigned, unsigned) {
          for (std::size_t i = lo; i < hi; ++i) c[i] = b[i] + 1.0;
        },
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(c[i], 2.0 * static_cast<double>(i) + 1.0) << mode_label(mode) << " index " << i;
    }
  }
}

TEST(ParallelPhases, ReportsThreadAndGroupIds) {
  ThreadPool pool(4, BarrierMode::kSpin, /*group_size=*/2);
  std::vector<std::atomic<int>> group_seen(pool.group_count());
  pool.parallel_phases(0, 4, {
      [&](std::size_t, std::size_t, unsigned tid, unsigned group) {
        EXPECT_EQ(group, pool.group_of(tid));
        group_seen[group] += 1;
      },
  });
  int total = 0;
  for (auto& g : group_seen) total += g.load();
  EXPECT_EQ(total, 4);
}

TEST(ParallelPhases, SerialFallbackKeepsPhaseOrder) {
  ThreadPool pool(1, BarrierMode::kCondvar);
  std::vector<int> order;
  pool.parallel_phases(0, 10, {
      [&](std::size_t, std::size_t, unsigned, unsigned) { order.push_back(1); },
      [&](std::size_t, std::size_t, unsigned, unsigned) { order.push_back(2); },
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(ParallelPhases, NestedCallDegradesToSerial) {
  ThreadPool pool(4, BarrierMode::kSpin, /*group_size=*/2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t, unsigned) {
    pool.parallel_phases(0, 8, {
        [&](std::size_t b, std::size_t e, unsigned, unsigned) {
          count += static_cast<int>(e - b);
        },
    });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelPhases, NestedFallbackKeepsPhaseOrderAndFullRange) {
  // A nested parallel_phases loses the single-submitter claim and must
  // degrade to the documented serial contract: phases in declaration
  // order, each over the FULL [first, last) range exactly once, with
  // tid 0 / group 0 — not some slice of the outer region's chunking.
  for (BarrierMode mode : kAllModes) {
    ThreadPool pool(4, mode, /*group_size=*/2);
    std::atomic<int> bad_shape{0};
    std::atomic<int> phase1_runs{0};
    std::atomic<int> out_of_order{0};
    pool.parallel_for(0, 4, [&](std::size_t, std::size_t, unsigned) {
      thread_local int last_phase;
      last_phase = 0;
      pool.parallel_phases(3, 11, {
          [&](std::size_t b, std::size_t e, unsigned tid, unsigned group) {
            if (b != 3 || e != 11 || tid != 0 || group != 0) bad_shape.fetch_add(1);
            if (last_phase != 0) out_of_order.fetch_add(1);
            last_phase = 1;
            phase1_runs.fetch_add(1);
          },
          [&](std::size_t b, std::size_t e, unsigned, unsigned) {
            if (b != 3 || e != 11) bad_shape.fetch_add(1);
            if (last_phase != 1) out_of_order.fetch_add(1);
            last_phase = 2;
          },
      });
    });
    // One serial drain per outer chunk; 4 threads -> 4 outer chunks.
    EXPECT_EQ(phase1_runs.load(), 4) << mode_label(mode);
    EXPECT_EQ(bad_shape.load(), 0) << mode_label(mode);
    EXPECT_EQ(out_of_order.load(), 0) << mode_label(mode);
  }
}

TEST(ParallelPhases, NestedFallbackPropagatesExceptionToOuterRegion) {
  ThreadPool pool(2, BarrierMode::kCondvar);
  std::atomic<int> after_ran{0};
  EXPECT_THROW(
      pool.parallel_for(0, 2,
                        [&](std::size_t, std::size_t, unsigned) {
                          pool.parallel_phases(0, 4, {
                              [&](std::size_t, std::size_t, unsigned, unsigned) {
                                throw std::runtime_error("nested phase failed");
                              },
                              [&](std::size_t, std::size_t, unsigned, unsigned) {
                                after_ran.fetch_add(1);
                              },
                          });
                        }),
      std::runtime_error);
  // The serial fallback rethrows out of the first phase, so the second
  // never starts on that thread, and the pool stays reusable.
  EXPECT_EQ(after_ran.load(), 0);
  std::atomic<int> count{0};
  pool.parallel_for(0, 8, [&](std::size_t b, std::size_t e, unsigned) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ParallelPhases, ExceptionInOnePhaseStillJoinsAndRethrows) {
  for (BarrierMode mode : kAllModes) {
    ThreadPool pool(4, mode, /*group_size=*/2);
    std::atomic<int> last_phase_ran{0};
    try {
      pool.parallel_phases(0, 8, {
          [&](std::size_t b, std::size_t, unsigned, unsigned) {
            if (b == 0) throw std::runtime_error("phase failed");
          },
          [&](std::size_t, std::size_t, unsigned, unsigned) { last_phase_ran.fetch_add(1); },
      });
      FAIL() << "expected rethrow under " << mode_label(mode);
    } catch (const std::runtime_error&) {
    }
    // Non-throwing threads still ran phase 2 (barrier arrivals stayed
    // balanced), and the pool is reusable.
    EXPECT_GT(last_phase_ran.load(), 0) << mode_label(mode);
    std::atomic<int> count{0};
    pool.parallel_phases(0, 16, {
        [&](std::size_t b, std::size_t e, unsigned, unsigned) {
          count += static_cast<int>(e - b);
        },
    });
    EXPECT_EQ(count.load(), 16) << mode_label(mode);
  }
}

TEST(ParallelPhases, EmptyInputsAreNoops) {
  ThreadPool pool(2, BarrierMode::kSpin);
  bool called = false;
  pool.parallel_phases(3, 3, {
      [&](std::size_t, std::size_t, unsigned, unsigned) { called = true; },
  });
  pool.parallel_phases(0, 10, {});
  EXPECT_FALSE(called);
}
