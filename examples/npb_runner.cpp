// NPB runner: execute any of the six reimplemented NAS Parallel
// Benchmarks at a host-scale class, verify it, and report both the
// measured host numbers and the model's class-C projection for A64FX.
//
// Usage: ./examples/npb_runner [--bench BT|CG|EP|LU|SP|UA] [--class S|W|A]
//                              [--threads N]        (default: all, class S)

#include <cstdio>
#include <string>

#include "ookami/common/cli.hpp"
#include "ookami/npb/npb.hpp"
#include "ookami/toolchain/toolchain.hpp"

using namespace ookami;
using npb::Benchmark;
using npb::Class;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string which = cli.get("bench", "all");
  const std::string cls_name = cli.get("class", "S");
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 2));

  Class cls = Class::kS;
  if (cls_name == "W") cls = Class::kW;
  else if (cls_name == "A") cls = Class::kA;
  else if (cls_name != "S") {
    std::fprintf(stderr, "host-runnable classes: S, W, A\n");
    return 1;
  }

  int failures = 0;
  for (auto b : npb::all_benchmarks()) {
    if (which != "all" && npb::benchmark_name(b) != which) continue;
    const auto r = npb::run(b, cls, threads);
    std::printf("%s.%s  %-8s  %8.3fs  %9.1f Mop/s  check=%.12g\n  %s\n",
                npb::benchmark_name(b).c_str(), npb::class_name(cls).c_str(),
                r.verified ? "VERIFIED" : "FAILED", r.seconds, r.mops, r.check_value,
                r.detail.c_str());
    failures += r.verified ? 0 : 1;

    // Model projection: what would class C cost on 48 A64FX cores?
    const auto prof = npb::class_c_profile(b);
    const auto& gcc = toolchain::policy(toolchain::Toolchain::kGnu).app;
    std::printf("  class-C projection (A64FX, gcc): 1 core %.0fs, 48 cores %.1fs\n\n",
                perf::app_time(perf::a64fx(), prof, gcc, 1).seconds,
                perf::app_time(perf::a64fx(), prof, gcc, 48).seconds);
  }
  return failures;
}
