// Quickstart: the three layers of ookami-kit in ~60 lines.
//
//   1. ookami::sve   — write a predicated SVE-style vector loop;
//   2. ookami::vecmath — call the FEXPA-based vector exp;
//   3. ookami::perf + ookami::toolchain — ask what that loop costs on
//      A64FX under each compiler.
//
// Build & run:  ./examples/quickstart

#include <cmath>
#include <cstdio>
#include <vector>

#include "ookami/perf/loop_model.hpp"
#include "ookami/toolchain/toolchain.hpp"
#include "ookami/vecmath/vecmath.hpp"

namespace sv = ookami::sve;
namespace vm = ookami::vecmath;

int main() {
  // --- 1. a predicated vector loop: y[i] = a*x[i] + y[i] ------------------
  const std::size_t n = 1003;  // deliberately not a multiple of 8
  std::vector<double> x(n), y(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.001 * static_cast<double>(i);

  const sv::Vec a(2.5);
  for (std::size_t i = 0; i < n; i += sv::kLanes) {
    const sv::Pred pg = sv::whilelt(i, n);        // WHILELT tail predicate
    const sv::Vec xi = sv::ld1(pg, x.data() + i); // predicated load
    const sv::Vec yi = sv::ld1(pg, y.data() + i);
    sv::st1(pg, y.data() + i, sv::fma(a, xi, yi)); // fused multiply-add
  }
  std::printf("daxpy: y[0]=%.3f y[%zu]=%.3f (expect 1.0 and %.3f)\n", y[0], n - 1, y[n - 1],
              1.0 + 2.5 * 0.001 * static_cast<double>(n - 1));

  // --- 2. the Section-IV exponential --------------------------------------
  std::vector<double> e(n);
  vm::exp_array({x.data(), n}, {e.data(), n});
  std::printf("vector exp: exp(%.3f)=%.6f (libm %.6f, %llu ulp apart)\n", x[100], e[100],
              std::exp(x[100]),
              static_cast<unsigned long long>(vm::ulp_distance(e[100], std::exp(x[100]))));

  // --- 3. price the exp loop on A64FX under each toolchain ----------------
  std::printf("\nmodelled cycles/element of an exp loop on A64FX:\n");
  for (auto tc : ookami::toolchain::a64fx_toolchains()) {
    std::printf("  %-8s %6.2f cyc/elem\n", ookami::toolchain::policy(tc).name.c_str(),
                ookami::toolchain::kernel_cycles_per_elem(ookami::loops::LoopKind::kExp, tc,
                                                          ookami::perf::a64fx()));
  }
  std::printf("\n(the Fujitsu/GNU gap is the paper's headline: no SVE vector math in glibc)\n");
  return 0;
}
