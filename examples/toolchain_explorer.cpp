// Toolchain explorer: "compile" any kernel of the §III loop suite under
// every toolchain model and print the predicted cycles/element on every
// machine — an interactive version of the Figure 1/2 engine.
//
// Usage: ./examples/toolchain_explorer [loop ...]
//   loop: simple predicate gather scatter short-gather short-scatter
//         recip sqrt exp sin pow            (default: all)

#include <cstdio>
#include <string>
#include <vector>

#include "ookami/common/cli.hpp"
#include "ookami/common/table.hpp"
#include "ookami/toolchain/toolchain.hpp"

using namespace ookami;
using toolchain::Toolchain;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  std::vector<loops::LoopKind> kinds;
  if (cli.positional().empty()) {
    kinds = loops::all_loop_kinds();
  } else {
    for (const auto& want : cli.positional()) {
      for (auto k : loops::all_loop_kinds()) {
        if (loops::loop_name(k) == want) kinds.push_back(k);
      }
    }
    if (kinds.empty()) {
      std::fprintf(stderr, "unknown loop name; options:");
      for (auto k : loops::all_loop_kinds()) std::fprintf(stderr, " %s", loops::loop_name(k).c_str());
      std::fprintf(stderr, "\n");
      return 1;
    }
  }

  const std::vector<const perf::MachineModel*> machines = {
      &perf::a64fx(), &perf::skylake_6140(), &perf::knl_7250(), &perf::zen2_7742()};
  const std::vector<Toolchain> tcs = {Toolchain::kFujitsu, Toolchain::kCray, Toolchain::kArm21,
                                      Toolchain::kArm20,   Toolchain::kGnu,  Toolchain::kAmd,
                                      Toolchain::kIntel};

  for (auto kind : kinds) {
    std::printf("== %s ==\n", loops::loop_name(kind).c_str());
    TextTable t({"toolchain", "A64FX cyc/elem", "SKL cyc/elem", "KNL cyc/elem",
                 "Zen2 cyc/elem", "vectorized on A64FX?"});
    for (auto tc : tcs) {
      const auto& p = toolchain::policy(tc);
      const auto lowered = toolchain::lower(loops::kernel_spec(kind), p, perf::a64fx());
      std::vector<std::string> row{p.name};
      for (const auto* m : machines) {
        row.push_back(TextTable::num(toolchain::kernel_cycles_per_elem(kind, tc, *m), 2));
      }
      row.push_back(lowered.vectorized ? "yes" : "NO (scalar)");
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("(cycles/element from the calibrated machine models; see DESIGN.md §2)\n");
  return 0;
}
