// The paper's Section III motivating example: a Monte Carlo evaluation
// of the integral <x> over p(x) ~ exp(-x) on [0, 23] by
// Metropolis sampling — first as the naive 3-line serial loop, then
// restructured the way §III prescribes: an outer loop over independent
// samples split for thread and vector parallelism, scalars promoted to
// vectors, a vectorizable (counter-based) random number generator, and
// the vector exponential.
//
// Usage: ./examples/montecarlo_exp [--samples N] [--threads T]

#include <cmath>
#include <cstdio>

#include "ookami/common/cli.hpp"
#include "ookami/common/rng.hpp"
#include "ookami/common/threadpool.hpp"
#include "ookami/common/timer.hpp"
#include "ookami/vecmath/vecmath.hpp"

namespace sv = ookami::sve;
using ookami::CounterRng;

namespace {

/// The naive loop from the paper — fully serial: every iteration
/// depends on the previous x, and exp() is a scalar libm call.
double naive_chain(std::uint64_t steps) {
  ookami::Xoshiro256 rng(7);
  double x = 23.0 * rng.uniform();
  double sum = 0.0;
  for (std::uint64_t it = 0; it < steps; ++it) {
    const double xnew = 23.0 * rng.uniform();
    if (std::exp(-xnew) > std::exp(-x) * rng.uniform()) x = xnew;
    sum += x;
  }
  return sum / static_cast<double>(steps);
}

/// The restructured version: kLanes independent Metropolis chains per
/// vector, many vectors per thread; the accept test becomes a predicate
/// and exp() the vector kernel.  Counter-based RNG streams make each
/// lane's randomness independent of execution order.
double vectorized_chains(std::uint64_t steps_per_chain, unsigned threads) {
  ookami::ThreadPool pool(threads);
  constexpr std::size_t kChainsPerThreadBlock = 64;  // 8 vectors in flight
  const std::size_t blocks = pool.size() * 4;
  const std::size_t chains = blocks * kChainsPerThreadBlock;

  const double total = pool.parallel_reduce(
      0, blocks, 0.0,
      [&](std::size_t b0, std::size_t b1, unsigned) {
        double acc = 0.0;
        for (std::size_t blk = b0; blk < b1; ++blk) {
          for (std::size_t c = 0; c < kChainsPerThreadBlock; c += sv::kLanes) {
            const std::size_t chain0 = blk * kChainsPerThreadBlock + c;
            // Promote the chain state to a vector: one chain per lane.
            sv::Vec x;
            for (int l = 0; l < sv::kLanes; ++l) {
              x[l] = 23.0 * CounterRng(chain0 + static_cast<std::size_t>(l)).uniform(0);
            }
            sv::Vec sum(0.0);
            const sv::Pred all = sv::ptrue();
            for (std::uint64_t it = 1; it <= steps_per_chain; ++it) {
              sv::Vec xnew, u;
              for (int l = 0; l < sv::kLanes; ++l) {
                const CounterRng rl(chain0 + static_cast<std::size_t>(l));
                xnew[l] = 23.0 * rl.uniform(2 * it);
                u[l] = rl.uniform(2 * it + 1);
              }
              const sv::Vec pnew = ookami::vecmath::exp(-xnew);
              const sv::Vec pold = ookami::vecmath::exp(-x);
              const sv::Pred accept = sv::cmpgt(all, pnew, pold * u);
              x = sv::sel(accept, xnew, x);   // the if-test becomes a select
              sum = sum + x;
            }
            acc += sv::reduce_add(all, sum);
          }
        }
        return acc;
      },
      [](double a, double b) { return a + b; });

  return total / static_cast<double>(chains) / static_cast<double>(steps_per_chain);
}

}  // namespace

int main(int argc, char** argv) {
  const ookami::Cli cli(argc, argv);
  const auto samples = static_cast<std::uint64_t>(cli.get_int("samples", 400000));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 2));

  // <x> for p ~ exp(-x) truncated to [0,23]: essentially 1 (the tail
  // beyond 23 contributes ~1e-9).
  std::printf("Monte Carlo <x> over p(x) ~ exp(-x) on [0,23]  (exact: ~1.0)\n\n");

  ookami::WallTimer t1;
  const double naive = naive_chain(samples);
  const double t_naive = t1.elapsed();
  std::printf("naive serial chain      : <x> = %.4f   (%.3fs, 1 chain x %llu steps)\n", naive,
              t_naive, static_cast<unsigned long long>(samples));

  ookami::WallTimer t2;
  const double vec = vectorized_chains(samples / 64, threads);
  const double t_vec = t2.elapsed();
  std::printf("vector+thread chains    : <x> = %.4f   (%.3fs, %u threads, 8 lanes/vector)\n",
              vec, t_vec, threads);

  std::printf("\nBoth estimates agree with the analytic value; the restructuring\n"
              "(§III: loop over independent samples, loop splitting, scalar->vector\n"
              "promotion, vector RNG + vector exp) is what turns the 500x GPU-vs-CPU\n"
              "anecdote into a fair comparison.\n");
  const bool ok = std::fabs(naive - 1.0) < 0.05 && std::fabs(vec - 1.0) < 0.05;
  std::printf("%s\n", ok ? "VERIFIED: both within 5% of the analytic mean" : "CHECK FAILED");
  return ok ? 0 : 1;
}
