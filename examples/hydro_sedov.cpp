// Sedov blast demo: run the LULESH-style hydro proxy, print an ASCII
// rendering of the blast front, and report the conservation checks.
//
// Usage: ./examples/hydro_sedov [--edge N] [--steps N] [--threads T] [--vect]

#include <cmath>
#include <cstdio>

#include "ookami/common/cli.hpp"
#include "ookami/lulesh/lulesh.hpp"

using namespace ookami;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  lulesh::Options opt;
  opt.edge_elems = static_cast<int>(cli.get_int("edge", 16));
  opt.max_steps = static_cast<int>(cli.get_int("steps", 80));
  opt.threads = static_cast<unsigned>(cli.get_int("threads", 2));
  opt.variant = cli.has("vect") ? lulesh::Variant::kVect : lulesh::Variant::kBase;

  std::printf("Sedov blast, %d^3 elements, %d steps, %u threads, %s kernels\n\n",
              opt.edge_elems, opt.max_steps, opt.threads,
              opt.variant == lulesh::Variant::kBase ? "Base" : "Vect(SVE)");

  const auto out = lulesh::run_sedov(opt);

  std::printf("steps run            : %d\n", out.steps);
  std::printf("wall time            : %.3f s\n", out.seconds);
  std::printf("origin element energy: %.5f (started at 1.0; the blast carried the rest away)\n",
              out.final_origin_energy);
  std::printf("total energy drift   : %.2e   (internal + kinetic vs deposited)\n",
              out.total_energy_drift);
  std::printf("octant symmetry error: %.2e\n", out.symmetry_error);
  std::printf("verification         : %s\n\n", out.verified ? "VERIFIED" : "FAILED");

  std::printf("Table II context: the paper's LULESH ports show the same story this proxy\n"
              "demonstrates — a vectorizable element loop (Vect) and OpenMP threading are\n"
              "each worth integer factors on A64FX; run bench/table2_lulesh for the matrix.\n");
  return out.verified ? 0 : 1;
}
